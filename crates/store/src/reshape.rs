//! Online array reshaping: grow or shrink a **live** store to a new
//! disk count, migrating every stripe to the target layout while
//! client traffic keeps flowing.
//!
//! # The scratch-region discipline
//!
//! [`BlockStore::begin_add_disks`] / [`BlockStore::begin_remove_disks`]
//! compute the target layout via the planning machinery in
//! [`pdl_core::plan_add`] / [`pdl_core::plan_remove`], then grow every
//! backend disk to `grown_units = scratch_base + U_tgt`, where
//! `scratch_base` is the source world's units-per-disk and `U_tgt =
//! target_copies × target_layout.size()`. The **target world** is
//! assembled at physical rows `[scratch_base, grown_units)` — a
//! scratch region that starts zero-filled (both backends zero-fill on
//! grow), so an untouched target stripe already satisfies its parity
//! equations (P and Q of all-zero data are zero). The transient cost
//! is roughly 2× disk space until the commit trims it back.
//!
//! # Correctness under racing writes
//!
//! * **Reads are source-authoritative.** No read path consults the
//!   target world; the source stays fully fresh until the commit
//!   swaps worlds, so reads need no migration cursor at all.
//! * **Writes are dual, unconditionally.** Every acknowledged write
//!   during an active reshape also lands in the target world
//!   (`BlockStore::dual_write`): under the reshape's own per-stripe
//!   lock table, the target data unit is read, the delta folded into
//!   the target P (and Q), and the new bytes written. Re-applying the
//!   same value is a no-op (delta = 0), so dual writes are
//!   **idempotent** and the writer never needs to know whether the
//!   migration has passed its address yet.
//! * **Migration batches need no target locks.** A batch covers the
//!   target stripes `[t0, t1)`, whose data ranges are exactly the
//!   contiguous logical addresses `[lo(t0), lo(t1))`; the batch holds
//!   the *source* shard locks of every stripe covering those
//!   addresses, and any writer to those addresses must take one of
//!   those locks first. Dual writes to *other* addresses touch only
//!   target stripes outside `[t0, t1)`. Lock order is everywhere
//!   `state guard → source shards → target shards`, so there is no
//!   cycle.
//! * A **logically failed** disk's lost units are decoded from source
//!   parity during migration; its target region *is* still written
//!   (the failure models a dead medium for the *source* world only —
//!   a deliberate out-of-model choice that keeps the target world
//!   complete, so a post-commit [`BlockStore::restore_disk`] works).
//!
//! # Durability and crash resume
//!
//! File-backed stores persist a [`ReshapeState`] inside `store.json`
//! (format version 3): at begin, at every `checkpoint_every`-th batch
//! boundary (cursor only advances in the document *after* the batch's
//! writes landed, so a resumed migration only ever re-copies), and at
//! every commit slide chunk. [`crate::open_file_store`] resumes a
//! `phase = "migrate"` document by rebuilding the runtime at the
//! persisted cursor, and statically *redoes* a `phase = "commit"`
//! document (slide from the watermark → mapping → final meta → trim)
//! before opening normally.
//!
//! # Commit
//!
//! [`BlockStore::complete_reshape`] requires the cursor at `total`,
//! then (under the exclusive state guard — a stop-the-world pause,
//! documented trade-off) drains the write-back cache, slides every
//! mapped disk's target region down from the scratch rows to row 0 in
//! watermarked chunks of at most `min(scratch_base, 4096)` rows (so a
//! chunk's write never overlaps the scratch rows a redo would
//! re-read), persists the mapping and the final metadata, trims the
//! backend to `U_tgt`, and swaps the in-memory world: target layout,
//! redirect table, remapped failure set, raised capacity, bumped
//! epoch.

use crate::backend::Backend;
use crate::cache::{key_parts, stripe_key, FlushSnapshot};
use crate::error::StoreError;
use crate::meta::{ReshapeState, StoreMeta};
use crate::obs::{Event, OpKind, ReshapeProgressSnapshot};
use crate::scheme::{FailureSet, ParityScheme};
use crate::store::{
    sort_shard_set, ArrayState, BlockStore, StripeLockTable, UnitCache, World, WritePlan, WriteSrc,
};
use pdl_algebra::gf256::{self, xor_slice};
use pdl_core::{DoubleParityLayout, LayoutSpec, ReshapeMethod, ReshapePlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether a reshape grows or shrinks the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReshapeKind {
    /// Adding disks (capacity grows at commit).
    Add,
    /// Removing disks (capacity is preserved; copies may grow).
    Remove,
}

impl ReshapeKind {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ReshapeKind::Add => "add",
            ReshapeKind::Remove => "remove",
        }
    }
}

/// How many layout copies the target world of a reshape gets.
///
/// The copy count is the capacity knob: the target address space is
/// `copies × data_units_per_copy(target)`. `Auto` reproduces the
/// historical behavior; the other policies let an add-disks reshape
/// *grow into* the new spindles instead of merely spreading the same
/// bytes thinner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CopiesPolicy {
    /// Add keeps the source copy count (capacity grows only by the
    /// wider layout); remove grows copies just enough to preserve
    /// capacity (`ceil(cap_src / dpc_tgt)`).
    #[default]
    Auto,
    /// Scale the copy count so per-disk usage stays roughly constant:
    /// `copies_tgt = max(auto, ceil(copies_src × size_src /
    /// size_tgt))`. Growing 9→10 disks with this policy climbs the
    /// capacity stairway instead of shrinking each disk's share.
    PreservePerDiskUsage,
    /// Exactly this many copies. Rejected with
    /// [`StoreError::Geometry`] if the target address space would not
    /// cover the source capacity (or `n` is zero).
    Exact(usize),
}

/// Tuning and test knobs for a reshape.
#[derive(Clone, Debug, Default)]
pub struct ReshapeOptions {
    /// Target stripes migrated per batch (and therefore per
    /// checkpointable unit of progress). `0` means one full target
    /// copy per batch — the fewest-backend-calls default.
    pub batch_stripes: usize,
    /// Persist a migration checkpoint every this many batches
    /// (file-backed stores only). `0` means every batch.
    pub checkpoint_every: usize,
    /// Target-world copy count policy (capacity of the reshaped
    /// array). See [`CopiesPolicy`].
    pub target_copies: CopiesPolicy,
    /// Test hook: fail the commit with [`StoreError::Corrupt`] after
    /// this many slide chunks have been written (and watermarked).
    /// The store must then be retried ([`BlockStore::complete_reshape`]
    /// resumes the slide at the watermark) or reopened from disk.
    pub commit_fault_after_chunks: Option<usize>,
}

/// Summary of a completed reshape.
#[derive(Clone, Debug)]
pub struct ReshapeReport {
    /// `"add"` or `"remove"`.
    pub kind: String,
    /// The construction that produced the target layout
    /// (see [`pdl_core::ReshapeMethod`]).
    pub method: String,
    /// Fraction of the common address range whose physical location
    /// differs between the worlds (reporting only; the migration
    /// copies by logical address regardless).
    pub moved_fraction: f64,
    /// Source disk count.
    pub from_v: usize,
    /// Target disk count.
    pub to_v: usize,
    /// Target stripes migrated (this process; a resumed reshape
    /// reports only its own share).
    pub stripes_migrated: u64,
    /// Units (data + parity) written into the target world by the
    /// migration (dual writes not counted).
    pub units_copied: u64,
    /// Logical capacity (blocks) before the reshape.
    pub capacity_before: usize,
    /// Logical capacity after the commit (grows on add, preserved on
    /// remove).
    pub capacity_after: usize,
    /// Wall-clock milliseconds from begin (or resume) to commit.
    pub elapsed_ms: u64,
}

/// Per-step scratch owned by the runtime's step mutex: serializes
/// [`BlockStore::reshape_step`] callers and keeps batch buffers warm.
#[derive(Debug, Default)]
pub(crate) struct StepState {
    batches_since_checkpoint: usize,
    src_data: Vec<u8>,
    ucache: UnitCache,
}

/// The in-memory state of an active reshape, installed in
/// [`ArrayState::reshape`] and shared by writers (dual writes), the
/// migration engine, and the stats path.
#[derive(Debug)]
pub(crate) struct ReshapeRuntime {
    pub(crate) kind: ReshapeKind,
    /// The target world being assembled in the scratch region.
    pub(crate) target: Arc<World>,
    /// Target logical disk → physical backend disk.
    pub(crate) tgt_redirect: Vec<usize>,
    /// First physical row of the scratch (target) region — the source
    /// world's units-per-disk.
    pub(crate) scratch_base: usize,
    /// Units per disk while the reshape is active.
    /// Target stripe indices to migrate: the smallest `t` whose data
    /// range starts at or past the source capacity. Tail stripes stay
    /// all-zero (valid parity) and are never touched.
    pub(crate) total: u64,
    /// Next target stripe index to migrate. Stored with `Release`
    /// *before* the batch's source locks drop, read with `Acquire`.
    pub(crate) cursor: AtomicU64,
    /// Units written into the target world by migration batches.
    pub(crate) units_done: AtomicU64,
    /// Commit slide watermark (target rows fully slid), so a faulted
    /// commit retries from where it stopped instead of re-reading
    /// scratch rows its own writes already clobbered.
    pub(crate) slide_done: AtomicU64,
    pub(crate) capacity_after: usize,
    /// Per-target-stripe lock table serializing dual writes; disjoint
    /// from the store's source lock table and always taken after it.
    pub(crate) tgt_locks: StripeLockTable,
    pub(crate) step: Mutex<StepState>,
    pub(crate) batch_stripes: usize,
    pub(crate) checkpoint_every: usize,
    pub(crate) from_v: usize,
    pub(crate) capacity_before: usize,
    pub(crate) method: ReshapeMethod,
    pub(crate) moved_fraction: f64,
    /// Logical source disks being removed (empty on add) — drives the
    /// failure-set remap at commit.
    pub(crate) removed: Vec<usize>,
    /// The persisted-state skeleton (cursor/slide at zero); checkpoint
    /// writers clone it and fill in the live cursor.
    pub(crate) state_template: ReshapeState,
    pub(crate) started: Instant,
}

impl ReshapeRuntime {
    /// First logical address of target stripe `t` (`t` counts
    /// `copy × stripes_per_copy + stripe`); `t` past the last copy
    /// maps to the end of the target address space.
    pub(crate) fn lo(&self, t: u64) -> usize {
        lo_of(&self.target, t)
    }

    /// Live progress for [`crate::StatsSnapshot`].
    pub(crate) fn progress_snapshot(&self) -> ReshapeProgressSnapshot {
        ReshapeProgressSnapshot {
            kind: self.kind.name().to_string(),
            to_v: self.target.layout.v() as u32,
            stripes_done: self.cursor.load(Ordering::Acquire),
            stripes_total: self.total,
            units_copied: self.units_done.load(Ordering::Relaxed),
            elapsed_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// First logical address of target stripe `t` in `target`.
fn lo_of(target: &World, t: u64) -> usize {
    let ns = target.layout.b() as u64;
    let dpc = target.smap.data_units_per_copy();
    let copy = (t / ns) as usize;
    if copy >= target.copies {
        return target.copies * dpc;
    }
    copy * dpc + target.smap.stripe_data_range((t % ns) as usize).0
}

/// Smallest target stripe index whose data range starts at or past
/// `cap_src` — everything below it must migrate, everything at or
/// above stays zero.
fn migration_total(target: &World, cap_src: usize) -> u64 {
    let end = (target.copies * target.layout.b()) as u64;
    (0..=end).find(|&t| lo_of(target, t) >= cap_src).unwrap_or(end)
}

impl<B: Backend> BlockStore<B> {
    /// Whether a reshape is currently active.
    pub fn reshaping(&self) -> bool {
        self.state_read().reshape.is_some()
    }

    /// Grows the array onto the listed **physical** backend disks
    /// (which must exist, be currently unmapped, and be distinct),
    /// blocking until the migration completes and commits. Racing
    /// reads and writes are safe throughout. Equivalent to
    /// [`BlockStore::begin_add_disks`] + [`BlockStore::finish_reshape`].
    pub fn add_disks(&self, new_physical: &[usize]) -> Result<ReshapeReport, StoreError> {
        self.begin_add_disks(new_physical)?;
        self.finish_reshape()
    }

    /// Shrinks the array by the listed **logical** disks, blocking
    /// until the migration completes and commits. Capacity is
    /// preserved (the target world grows extra layout copies as
    /// needed); the freed physical disks become spares.
    pub fn remove_disks(&self, logical: &[usize]) -> Result<ReshapeReport, StoreError> {
        self.begin_remove_disks(logical)?;
        self.finish_reshape()
    }

    /// Starts an add-disks reshape with default options; drive it
    /// with [`BlockStore::reshape_step`] and
    /// [`BlockStore::complete_reshape`].
    pub fn begin_add_disks(&self, new_physical: &[usize]) -> Result<(), StoreError> {
        self.begin_add_disks_with(new_physical, &ReshapeOptions::default())
    }

    /// [`BlockStore::begin_add_disks`] with explicit [`ReshapeOptions`].
    pub fn begin_add_disks_with(
        &self,
        new_physical: &[usize],
        opts: &ReshapeOptions,
    ) -> Result<(), StoreError> {
        let mut st = self.state_write();
        self.check_reshape_allowed(&st)?;
        if new_physical.is_empty() {
            return Err(StoreError::Geometry("no disks to add".into()));
        }
        let disks = self.backend.disks();
        let mut mapped = vec![false; disks];
        for &p in &st.redirect {
            mapped[p] = true;
        }
        for &p in new_physical {
            if p >= disks {
                return Err(StoreError::Geometry(format!(
                    "physical disk {p} out of range (backend has {disks})"
                )));
            }
            if mapped[p] {
                return Err(StoreError::Geometry(format!(
                    "physical disk {p} is already mapped or listed twice"
                )));
            }
            mapped[p] = true;
        }
        let plan = pdl_core::plan_add(&st.world.layout, new_physical.len())
            .map_err(|e| StoreError::Geometry(e.to_string()))?;
        let mut tgt_redirect = st.redirect.clone();
        tgt_redirect.extend_from_slice(new_physical);
        self.begin_reshape_locked(&mut st, ReshapeKind::Add, plan, tgt_redirect, Vec::new(), opts)
    }

    /// Starts a remove-disks reshape with default options.
    pub fn begin_remove_disks(&self, logical: &[usize]) -> Result<(), StoreError> {
        self.begin_remove_disks_with(logical, &ReshapeOptions::default())
    }

    /// [`BlockStore::begin_remove_disks`] with explicit
    /// [`ReshapeOptions`]. Removing a currently *failed* disk is
    /// allowed — its units are decoded from parity during migration.
    pub fn begin_remove_disks_with(
        &self,
        logical: &[usize],
        opts: &ReshapeOptions,
    ) -> Result<(), StoreError> {
        let mut st = self.state_write();
        self.check_reshape_allowed(&st)?;
        let plan = pdl_core::plan_remove(&st.world.layout, logical)
            .map_err(|e| StoreError::Geometry(e.to_string()))?;
        let v_src = st.world.layout.v();
        let tgt_redirect: Vec<usize> =
            (0..v_src).filter(|d| !logical.contains(d)).map(|d| st.redirect[d]).collect();
        self.begin_reshape_locked(
            &mut st,
            ReshapeKind::Remove,
            plan,
            tgt_redirect,
            logical.to_vec(),
            opts,
        )
    }

    fn check_reshape_allowed(&self, st: &ArrayState) -> Result<(), StoreError> {
        if st.reshape.is_some() {
            return Err(StoreError::ReshapeInProgress);
        }
        if let Some((d, _)) = st.rebuilding {
            return Err(StoreError::RebuildInProgress(d));
        }
        Ok(())
    }

    fn begin_reshape_locked(
        &self,
        st: &mut ArrayState,
        kind: ReshapeKind,
        plan: ReshapePlan,
        tgt_redirect: Vec<usize>,
        removed: Vec<usize>,
        opts: &ReshapeOptions,
    ) -> Result<(), StoreError> {
        let tgt_layout = plan.layout;
        let tgt_pq = match self.scheme {
            ParityScheme::Xor => None,
            ParityScheme::PQ => {
                if let Some(bad) = tgt_layout.stripes().iter().position(|s| s.len() > 255) {
                    return Err(StoreError::Geometry(format!(
                        "target stripe {bad} has {} units; P+Q supports at most 255",
                        tgt_layout.stripes()[bad].len()
                    )));
                }
                let dp = DoubleParityLayout::new(tgt_layout.clone())
                    .map_err(|e| StoreError::Geometry(format!("target parity assignment: {e}")))?;
                Some(dp.all_parity_slots().to_vec())
            }
        };
        let cap_src = self.capacity.load(Ordering::Acquire);
        let parity_per = self.scheme.parity_per_stripe();
        let dpc_tgt: usize = tgt_layout.stripes().iter().map(|s| s.len() - parity_per).sum();
        let auto_copies = match kind {
            ReshapeKind::Add => st.world.copies,
            ReshapeKind::Remove => cap_src.div_ceil(dpc_tgt),
        };
        let copies_tgt = match opts.target_copies {
            CopiesPolicy::Auto => auto_copies,
            CopiesPolicy::PreservePerDiskUsage => {
                let src_units = st.world.copies * st.world.layout.size();
                auto_copies.max(src_units.div_ceil(tgt_layout.size())).max(1)
            }
            CopiesPolicy::Exact(n) => {
                if n == 0 || n * dpc_tgt < cap_src {
                    return Err(StoreError::Geometry(format!(
                        "target copy count {n} covers {} blocks; source capacity is {cap_src}",
                        n * dpc_tgt
                    )));
                }
                n
            }
        };
        let capacity_after = match kind {
            ReshapeKind::Add => copies_tgt * dpc_tgt,
            ReshapeKind::Remove => cap_src.max(
                // A policy that grew the copy count past Auto's
                // minimum exposes the extra room it paid for.
                if copies_tgt > auto_copies { copies_tgt * dpc_tgt } else { cap_src },
            ),
        };
        let scratch_base = self.backend.units_per_disk();
        let u_tgt = copies_tgt * tgt_layout.size();
        let grown_units = scratch_base + u_tgt;
        if grown_units > u32::MAX as usize {
            return Err(StoreError::Geometry(format!(
                "reshape scratch geometry of {grown_units} units per disk overflows unit offsets"
            )));
        }
        let from_v = st.world.layout.v();
        let to_v = tgt_layout.v();
        let target = Arc::new(World::new(Arc::new(tgt_layout), tgt_pq, copies_tgt));
        debug_assert_eq!(dpc_tgt, target.smap.data_units_per_copy());
        let total = migration_total(&target, cap_src);
        let batch_stripes =
            if opts.batch_stripes == 0 { target.layout.b() } else { opts.batch_stripes };
        let checkpoint_every = opts.checkpoint_every.max(1);
        let state_template = ReshapeState {
            kind: kind.name().to_string(),
            phase: "migrate".into(),
            cursor: 0,
            slide_done: 0,
            target_layout: LayoutSpec::from_layout(&target.layout),
            target_parity_slots: target
                .pq_slots
                .as_ref()
                .map(|s| s.iter().map(|&(p, q)| (p as u32, q as u32)).collect())
                .unwrap_or_default(),
            target_copies: copies_tgt,
            tgt_redirect: tgt_redirect.clone(),
            removed: removed.clone(),
            scratch_base,
            grown_units,
            capacity_after,
            batch_stripes,
            checkpoint_every,
        };
        // Grow under the exclusive guard (no I/O in flight). If the
        // begin-state persist then fails, shrink back so a retried
        // begin doesn't stack scratch regions; a crash in between
        // leaves longer files that the trimming open self-heals.
        self.backend.set_units_per_disk(grown_units)?;
        let rs = Arc::new(ReshapeRuntime {
            kind,
            target,
            tgt_redirect,
            scratch_base,
            total,
            cursor: AtomicU64::new(0),
            units_done: AtomicU64::new(0),
            slide_done: AtomicU64::new(0),
            capacity_after,
            tgt_locks: StripeLockTable::new(),
            step: Mutex::new(StepState::default()),
            batch_stripes,
            checkpoint_every,
            from_v,
            capacity_before: cap_src,
            method: plan.method,
            moved_fraction: plan.moved_fraction,
            removed,
            state_template,
            started: Instant::now(),
        });
        if let Some(p) = &self.meta_persister {
            if let Err(e) = p.0(&self.source_meta(st, rs.state_template.clone())) {
                let _ = self.backend.set_units_per_disk(scratch_base);
                return Err(e);
            }
        }
        st.reshape = Some(rs);
        st.epoch += 1;
        // Stripe indices change meaning across worlds: any in-flight
        // scrub pass restarts from zero (it also yields while the
        // reshape is active — see `scrub`).
        self.scrub_cursor.store(0, Ordering::Release);
        let epoch = st.epoch;
        self.events.emit(|| Event::ReshapeBegan {
            from_v: from_v as u32,
            to_v: to_v as u32,
            epoch,
        });
        Ok(())
    }

    /// The store's own metadata document (source world) carrying
    /// `state` as its embedded reshape state (format version 3).
    fn source_meta(&self, st: &ArrayState, state: ReshapeState) -> StoreMeta {
        let w = &st.world;
        StoreMeta {
            version: 3,
            unit_size: self.unit_size,
            copies: w.copies,
            spares: self.backend.disks() - w.layout.v(),
            scheme: self.scheme.name().to_string(),
            parity_slots: w
                .pq_slots
                .as_ref()
                .map(|s| s.iter().map(|&(p, q)| (p as u32, q as u32)).collect())
                .unwrap_or_default(),
            cache_policy: self.cache.policy().encode(),
            layout: LayoutSpec::from_layout(&w.layout),
            reshape: Some(state),
            scrub: None,
        }
    }

    /// The committed (post-reshape) metadata document.
    fn target_meta(&self, rs: &ReshapeRuntime) -> StoreMeta {
        let tw = &rs.target;
        StoreMeta {
            version: if self.scheme == ParityScheme::PQ { 2 } else { 1 },
            unit_size: self.unit_size,
            copies: tw.copies,
            spares: self.backend.disks() - tw.layout.v(),
            scheme: self.scheme.name().to_string(),
            parity_slots: tw
                .pq_slots
                .as_ref()
                .map(|s| s.iter().map(|&(p, q)| (p as u32, q as u32)).collect())
                .unwrap_or_default(),
            cache_policy: self.cache.policy().encode(),
            layout: LayoutSpec::from_layout(&tw.layout),
            reshape: None,
            scrub: None,
        }
    }

    /// Runs up to `max_batches` migration batches (at least one).
    /// Returns `true` once every migratable target stripe has been
    /// copied — then call [`BlockStore::complete_reshape`]. Callers
    /// from several threads serialize on the runtime's step mutex.
    pub fn reshape_step(&self, max_batches: usize) -> Result<bool, StoreError> {
        let rs = {
            let st = self.state_read();
            match &st.reshape {
                Some(rs) => rs.clone(),
                None => return Err(StoreError::NoActiveReshape),
            }
        };
        let mut step = rs.step.lock().unwrap();
        let mut done = rs.cursor.load(Ordering::Acquire) >= rs.total;
        for _ in 0..max_batches.max(1) {
            if done {
                break;
            }
            done = self.migrate_batch(&rs, &mut step)?;
        }
        Ok(done)
    }

    /// Drives the active reshape to completion: migrates every batch,
    /// then commits. Blocking convenience over
    /// [`BlockStore::reshape_step`] + [`BlockStore::complete_reshape`].
    pub fn finish_reshape(&self) -> Result<ReshapeReport, StoreError> {
        while !self.reshape_step(8)? {}
        self.complete_reshape()
    }

    /// One migration batch: flush covered cache entries, band-read the
    /// covered source stripes, decode lost units, assemble and write
    /// the target stripes at the scratch rows, advance the cursor.
    fn migrate_batch(
        &self,
        rs: &Arc<ReshapeRuntime>,
        step: &mut StepState,
    ) -> Result<bool, StoreError> {
        let t0 = rs.cursor.load(Ordering::Acquire);
        if t0 >= rs.total {
            return Ok(true);
        }
        let started = Instant::now();
        let us = self.unit_size;
        // The state read guard pins the failure set for the whole
        // batch; fail/restore transitions serialize between batches.
        let st = self.state_read();
        match &st.reshape {
            Some(cur) if Arc::ptr_eq(cur, rs) => {}
            _ => return Ok(true), // committed (or aborted) underneath us
        }
        let w = st.world.clone();
        let cap_src = self.capacity.load(Ordering::Acquire);
        let t1 = (t0 + rs.batch_stripes as u64).min(rs.total);
        let lo_addr = rs.lo(t0);
        let hi_addr = rs.lo(t1);
        // Source stripes covering the batch's address range, and
        // their shards — locked exclusive for the whole batch, which
        // is what lets the target writes skip target locks entirely.
        let mut src_keys: Vec<u64> = Vec::new();
        let mut shards: Vec<usize> = Vec::new();
        let mut a = lo_addr;
        while a < hi_addr.min(cap_src) {
            let m = w.smap.locate_full(a);
            src_keys.push(stripe_key(m.copy, m.stripe));
            shards.push(self.locks.shard_of(m.copy, m.stripe));
            let (lo, k_data) = w.smap.stripe_data_range(m.stripe);
            a = m.copy * w.smap.data_units_per_copy() + lo + k_data;
        }
        sort_shard_set(&mut shards);
        let guards = self.locks.lock_sorted(&shards);
        // Covered dirty cache entries flush under the held locks, so
        // the band read below sees their bytes.
        if self.cache.maybe_dirty() {
            let mut keys: Vec<u64> = src_keys
                .iter()
                .copied()
                .filter(|&k| {
                    let (c, s) = key_parts(k);
                    self.cache.has_entry(self.locks.shard_of(c, s), k)
                })
                .collect();
            if !keys.is_empty() {
                keys.sort_unstable();
                let mut snap = FlushSnapshot::default();
                let mut plan = WritePlan::new(self.backend.disks());
                let mut staged: Vec<u8> = Vec::new();
                self.flush_batch_locked(&st, &keys, &mut snap, &mut plan, &mut staged)?;
            }
        }
        // Band-read every surviving unit (data + parity) of the
        // covered stripes: one coalesced vectored call per disk.
        let StepState { src_data, ucache, .. } = step;
        ucache.wants.clear();
        for &key in &src_keys {
            let (copy, si) = key_parts(key);
            let shift = (copy * w.layout.size()) as u32;
            for u in w.layout.stripes()[si].units() {
                if st.failed.contains(u.disk as usize) {
                    continue;
                }
                ucache.push_want(st.redirect[u.disk as usize] as u32, u.offset + shift);
            }
        }
        // Band read through the engine when it is running (the
        // reshape is a background job: maintenance priority).
        match self.engine_if_on() {
            Some(eng) => ucache.fill_engine(&eng, us)?,
            None => ucache.fill(&*self.backend, us, &self.integrity)?,
        }
        // Assemble the batch's source bytes in address order:
        // healthy units from the band read, lost units decoded once
        // per stripe, addresses past the source capacity left zero.
        let n_addr = hi_addr - lo_addr;
        src_data.clear();
        src_data.resize(n_addr * us, 0);
        let fill_end = cap_src.saturating_sub(lo_addr).min(n_addr);
        let mut scratch = self.scratch.get();
        let res: Result<usize, StoreError> = (|| {
            let mut decoded_for = (usize::MAX, usize::MAX);
            let mut solved = [None, None];
            for i in 0..fill_end {
                let m = w.smap.locate_full(lo_addr + i);
                let out = &mut src_data[i * us..(i + 1) * us];
                if st.failed.contains(m.unit.disk as usize) {
                    if decoded_for != (m.copy, m.stripe) {
                        let shift = (m.copy * w.layout.size()) as u32;
                        solved = self.decode_stripe_with(
                            &st,
                            m.stripe,
                            shift,
                            &[],
                            &mut scratch,
                            |u, buf| {
                                ucache.copy_to(st.redirect[u.disk as usize] as u32, u.offset, buf)
                            },
                        )?;
                        decoded_for = (m.copy, m.stripe);
                    }
                    let which = solved
                        .iter()
                        .flatten()
                        .find(|&&(slot, _)| slot == m.slot)
                        .map(|&(_, b)| b)
                        .ok_or_else(|| {
                            StoreError::Corrupt("reshape decode missed a lost unit".into())
                        })?;
                    out.copy_from_slice(scratch.decoded(which));
                } else {
                    ucache.copy_to(st.redirect[m.unit.disk as usize] as u32, m.unit.offset, out)?;
                }
            }
            // Plan and write the target stripes at the scratch rows.
            let mut plan = WritePlan::new(self.backend.disks());
            let mut units_planned = 0usize;
            for t in t0..t1 {
                units_planned += self.plan_target_stripe(rs, t, lo_addr, src_data, &mut plan);
            }
            self.flush_write_plan(&mut plan, src_data)?;
            Ok(units_planned)
        })();
        self.scratch.put(scratch);
        let units_planned = res?;
        rs.units_done.fetch_add(units_planned as u64, Ordering::Relaxed);
        // Publish progress before releasing the source locks: a
        // resumed migration may re-copy (idempotent) but never skips.
        rs.cursor.store(t1, Ordering::Release);
        drop(guards);
        drop(st);
        self.metrics.record_op(
            OpKind::ReshapeCopy,
            units_planned as u64,
            started.elapsed().as_nanos() as u64,
        );
        self.events.emit(|| Event::ReshapeProgress { stripes_done: t1, stripes_total: rs.total });
        step.batches_since_checkpoint += 1;
        if step.batches_since_checkpoint >= rs.checkpoint_every {
            step.batches_since_checkpoint = 0;
            self.persist_migrate_checkpoint(rs, t1)?;
        }
        Ok(t1 >= rs.total)
    }

    /// Plans one target stripe into `plan`: data units from the
    /// batch's assembled source bytes, P/Q computed fresh, every
    /// offset shifted into the scratch region. Returns units planned.
    fn plan_target_stripe(
        &self,
        rs: &ReshapeRuntime,
        t: u64,
        lo_addr: usize,
        src_data: &[u8],
        plan: &mut WritePlan,
    ) -> usize {
        let us = self.unit_size;
        let tw = &rs.target;
        let ns = tw.layout.b() as u64;
        let copy = (t / ns) as usize;
        let si = (t % ns) as usize;
        let (lo, k_data) = tw.smap.stripe_data_range(si);
        let start_addr = copy * tw.smap.data_units_per_copy() + lo;
        let base = start_addr - lo_addr;
        let sb = rs.scratch_base as u32;
        let shift = (copy * tw.layout.size()) as u32;
        let units = tw.layout.stripes()[si].units();
        let (p_slot, q_slot) = tw.smap.parity_slots(si);
        let is_pq = self.scheme == ParityScheme::PQ;
        let WritePlan { by_disk, parity, unsorted } = plan;
        let p_idx = parity.len() / us;
        parity.extend_from_slice(&src_data[base * us..(base + 1) * us]);
        if is_pq {
            parity.resize((p_idx + 2) * us, 0);
        }
        let (acc_p, acc_q) = parity[p_idx * us..].split_at_mut(us);
        let mut push = |disk: usize, offset: u32, src: WriteSrc| {
            let bucket = &mut by_disk[disk];
            if bucket.last().is_some_and(|&(last, _)| offset < last) {
                *unsorted = true;
            }
            bucket.push((offset, src));
        };
        for j in 0..k_data {
            let chunk = &src_data[(base + j) * us..(base + j + 1) * us];
            let m = tw.smap.locate_full(start_addr + j);
            debug_assert_eq!(m.stripe, si);
            if j > 0 {
                xor_slice(acc_p, chunk);
            }
            if is_pq {
                gf256::mul_add_slice(acc_q, chunk, gf256::gen_pow(m.slot));
            }
            push(
                rs.tgt_redirect[m.unit.disk as usize],
                sb + m.unit.offset,
                WriteSrc::data(base + j),
            );
        }
        let pu = units[p_slot];
        push(rs.tgt_redirect[pu.disk as usize], sb + pu.offset + shift, WriteSrc::parity(p_idx));
        let mut planned = k_data + 1;
        if let Some(qs) = q_slot {
            let qu = units[qs];
            push(
                rs.tgt_redirect[qu.disk as usize],
                sb + qu.offset + shift,
                WriteSrc::parity(p_idx + 1),
            );
            planned += 1;
        }
        planned
    }

    /// Mirrors an acknowledged write into the target world: under the
    /// reshape's own stripe lock, fold the delta into target P (and
    /// Q), then write the new bytes. Idempotent — re-applying the
    /// current value is a no-op — so writers never consult the
    /// migration cursor. Called with the source stripe's shard lock
    /// held (write path) — lock order `source shard → target shard`.
    pub(crate) fn dual_write(
        &self,
        rs: &ReshapeRuntime,
        addr: usize,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let tw = &rs.target;
        let m = tw.smap.locate_full(addr);
        let sb = rs.scratch_base;
        let shard = rs.tgt_locks.shard_of(m.copy, m.stripe);
        let (_guard, _) = rs.tgt_locks.lock_one_counting(shard);
        let mut s = self.scratch.get();
        let res = (|| {
            let d_disk = rs.tgt_redirect[m.unit.disk as usize];
            let d_off = sb + m.unit.offset as usize;
            // acc_p = old ^ new (the delta); tmp is the parity RMW
            // buffer.
            self.backend.read_unit(d_disk, d_off, &mut s.acc_p)?;
            xor_slice(&mut s.acc_p, data);
            if s.acc_p.iter().all(|&b| b == 0) {
                return Ok(()); // same value: nothing to fold or write
            }
            let shift = (m.copy * tw.layout.size()) as u32;
            let units = tw.layout.stripes()[m.stripe].units();
            let (p_slot, q_slot) = tw.smap.parity_slots(m.stripe);
            let pu = units[p_slot];
            let p_disk = rs.tgt_redirect[pu.disk as usize];
            let p_off = sb + (pu.offset + shift) as usize;
            self.backend.read_unit(p_disk, p_off, &mut s.tmp)?;
            let (delta, par) = (&s.acc_p, &mut s.tmp);
            xor_slice(par, delta);
            self.backend.write_unit(p_disk, p_off, par)?;
            if let Some(qs) = q_slot {
                let qu = units[qs];
                let q_disk = rs.tgt_redirect[qu.disk as usize];
                let q_off = sb + (qu.offset + shift) as usize;
                self.backend.read_unit(q_disk, q_off, par)?;
                gf256::mul_add_slice(par, delta, gf256::gen_pow(m.slot));
                self.backend.write_unit(q_disk, q_off, par)?;
            }
            self.backend.write_unit(d_disk, d_off, data)
        })();
        self.scratch.put(s);
        res
    }

    /// Durably checkpoints the active reshape at its *current* cursor
    /// (a no-op when none is active, or for memory-backed stores) —
    /// the reshape driver's stop path, so a later driver resumes at
    /// the stop point instead of the last periodic checkpoint.
    pub(crate) fn checkpoint_active_reshape(&self) -> Result<(), StoreError> {
        let rs = {
            let st = self.state_read();
            match &st.reshape {
                Some(rs) => rs.clone(),
                None => return Ok(()),
            }
        };
        let cursor = rs.cursor.load(Ordering::Acquire);
        self.persist_migrate_checkpoint(&rs, cursor)
    }

    fn persist_migrate_checkpoint(
        &self,
        rs: &Arc<ReshapeRuntime>,
        cursor: u64,
    ) -> Result<(), StoreError> {
        let Some(p) = &self.meta_persister else { return Ok(()) };
        // Re-check under the state guard: a concurrent commit (which
        // holds the guard exclusively for its whole duration) must not
        // have its final document overwritten by a stale checkpoint.
        let st = self.state_read();
        match &st.reshape {
            Some(cur) if Arc::ptr_eq(cur, rs) => {}
            _ => return Ok(()),
        }
        let mut state = rs.state_template.clone();
        state.cursor = cursor;
        p.0(&self.source_meta(&st, state))
    }

    fn persist_commit_watermark(
        &self,
        st: &ArrayState,
        rs: &ReshapeRuntime,
        slide_done: u64,
    ) -> Result<(), StoreError> {
        let Some(p) = &self.meta_persister else { return Ok(()) };
        let mut state = rs.state_template.clone();
        state.phase = "commit".into();
        state.cursor = rs.total;
        state.slide_done = slide_done;
        p.0(&self.source_meta(st, state))
    }

    /// Commits a fully migrated reshape (see module docs for the
    /// crash windows). Errors with [`StoreError::ReshapeIncomplete`]
    /// if migration hasn't reached the end. On an injected or I/O
    /// fault mid-commit, retrying resumes the slide at the watermark.
    pub fn complete_reshape(&self) -> Result<ReshapeReport, StoreError> {
        self.complete_reshape_with(&ReshapeOptions::default())
    }

    /// [`BlockStore::complete_reshape`] with options (the commit fault
    /// hook lives there; batch/checkpoint knobs are ignored here).
    pub fn complete_reshape_with(
        &self,
        opts: &ReshapeOptions,
    ) -> Result<ReshapeReport, StoreError> {
        let mut st = self.state_write();
        let rs = match &st.reshape {
            Some(rs) => rs.clone(),
            None => return Err(StoreError::NoActiveReshape),
        };
        let done = rs.cursor.load(Ordering::Acquire);
        if done < rs.total {
            return Err(StoreError::ReshapeIncomplete { done, total: rs.total });
        }
        // Drain the cache completely: entry keys and shapes belong to
        // the source world, and the swap below must leave it empty.
        // (Entry bytes are already in the target via dual writes.)
        self.flush_cache_locked(&st)?;
        let us = self.unit_size;
        let tw = rs.target.clone();
        let u_tgt = tw.copies * tw.layout.size();
        let sb = rs.scratch_base;
        let mut row = rs.slide_done.load(Ordering::Acquire) as usize;
        self.persist_commit_watermark(&st, &rs, row as u64)?;
        // Slide the target region down: chunk ≤ scratch_base rows, so
        // a chunk's writes never clobber scratch rows a redo from the
        // watermark would re-read.
        let chunk_rows = sb.clamp(1, 4096);
        let mut buf = vec![0u8; chunk_rows * us];
        let mut chunks_done = 0usize;
        while row < u_tgt {
            let n = chunk_rows.min(u_tgt - row);
            for &phys in &rs.tgt_redirect {
                self.backend.read_units(phys, sb + row, &mut buf[..n * us])?;
                self.backend.write_units(phys, row, &buf[..n * us])?;
            }
            row += n;
            rs.slide_done.store(row as u64, Ordering::Release);
            self.persist_commit_watermark(&st, &rs, row as u64)?;
            chunks_done += 1;
            if opts.commit_fault_after_chunks == Some(chunks_done) {
                return Err(StoreError::Corrupt("injected reshape commit fault".into()));
            }
        }
        self.backend.persist_mapping(&rs.tgt_redirect)?;
        if let Some(p) = &self.meta_persister {
            p.0(&self.target_meta(&rs))?;
        }
        self.backend.set_units_per_disk(u_tgt)?;
        self.backend.flush()?;
        // Swap worlds. Failures survive the flip (remapped through the
        // survivors on remove; a removed failed disk simply drops
        // out); the new world's stale markers start fresh — the
        // target region of a failed disk was kept complete by dual
        // writes and the migration, so restore-after-commit is valid.
        let mut new_failed = FailureSet::new();
        match rs.kind {
            ReshapeKind::Add => {
                let old: Vec<usize> = st.failed.iter().collect();
                for d in old {
                    new_failed.insert(d);
                }
            }
            ReshapeKind::Remove => {
                let mut t = 0usize;
                for d in 0..rs.from_v {
                    if rs.removed.contains(&d) {
                        continue;
                    }
                    if st.failed.contains(d) {
                        new_failed.insert(t);
                    }
                    t += 1;
                }
            }
        }
        st.world = tw.clone();
        st.redirect = rs.tgt_redirect.clone();
        st.failed = new_failed;
        st.rebuilding = None;
        st.reshape = None;
        st.epoch += 1;
        self.capacity.store(rs.capacity_after, Ordering::Release);
        // The slide moved target-world bytes into rows whose recorded
        // checksums (if any) describe *source*-world units: sliding
        // the sums down would still leave every untouched tail row
        // stale. Drop the whole table instead — unset sums are
        // re-adopted by the next scrub pass (or re-recorded by
        // writes), which trades one pass of verification for zero
        // false mismatches. The scrub cursor restarts with the new
        // stripe numbering.
        self.integrity.sums.resize_units(u_tgt);
        for d in 0..self.backend.disks() {
            self.integrity.sums.clear_disk(d);
        }
        // The sidecar's geometry header changed with the table: force
        // the next persist to write a fresh base rather than append
        // old-geometry entries to the incremental log.
        self.sums_full_rewrite.store(true, Ordering::Release);
        self.scrub_cursor.store(0, Ordering::Release);
        let epoch = st.epoch;
        let to_v = tw.layout.v();
        self.events.emit(|| Event::ReshapeCompleted { to_v: to_v as u32, epoch });
        Ok(ReshapeReport {
            kind: rs.kind.name().to_string(),
            method: rs.method.to_string(),
            moved_fraction: rs.moved_fraction,
            from_v: rs.from_v,
            to_v,
            stripes_migrated: rs.total,
            units_copied: rs.units_done.load(Ordering::Relaxed),
            capacity_before: rs.capacity_before,
            capacity_after: rs.capacity_after,
            elapsed_ms: rs.started.elapsed().as_millis() as u64,
        })
    }

    /// Reinstalls a persisted mid-migration reshape on a freshly
    /// reopened store (called by [`crate::open_file_store`] for
    /// `phase = "migrate"` documents). The runtime resumes at the
    /// persisted cursor; already-copied batches may be re-copied
    /// (idempotent), never skipped.
    pub(crate) fn install_resumed_reshape(&self, state: &ReshapeState) -> Result<(), StoreError> {
        let mut st = self.state_write();
        self.check_reshape_allowed(&st)?;
        let kind = match state.kind.as_str() {
            "add" => ReshapeKind::Add,
            "remove" => ReshapeKind::Remove,
            other => {
                return Err(StoreError::Corrupt(format!("unknown reshape kind `{other}`")));
            }
        };
        let tgt_layout = state
            .target_layout
            .to_layout()
            .map_err(|e| StoreError::Corrupt(format!("reshape target layout: {e}")))?;
        let tgt_pq = match self.scheme {
            ParityScheme::Xor => None,
            ParityScheme::PQ => {
                if state.target_parity_slots.is_empty() {
                    return Err(StoreError::Corrupt(
                        "reshape state is missing target parity slots".into(),
                    ));
                }
                Some(
                    state
                        .target_parity_slots
                        .iter()
                        .map(|&(p, q)| (p as usize, q as usize))
                        .collect::<Vec<_>>(),
                )
            }
        };
        if state.target_copies == 0 {
            return Err(StoreError::Corrupt("reshape state has zero target copies".into()));
        }
        let disks = self.backend.disks();
        let mut seen = vec![false; disks];
        for &p in &state.tgt_redirect {
            if p >= disks || seen[p] {
                return Err(StoreError::Corrupt(format!(
                    "reshape target mapping entry {p} is out of range or duplicated"
                )));
            }
            seen[p] = true;
        }
        if state.tgt_redirect.len() != tgt_layout.v() {
            return Err(StoreError::Corrupt(format!(
                "reshape target mapping covers {} disks, target layout has {}",
                state.tgt_redirect.len(),
                tgt_layout.v()
            )));
        }
        let target = Arc::new(World::new(Arc::new(tgt_layout), tgt_pq, state.target_copies));
        let u_tgt = state.target_copies * target.layout.size();
        if state.scratch_base + u_tgt != state.grown_units
            || self.backend.units_per_disk() != state.grown_units
        {
            return Err(StoreError::Corrupt(
                "reshape state geometry disagrees with the backend".into(),
            ));
        }
        let cap_src = self.capacity.load(Ordering::Acquire);
        let total = migration_total(&target, cap_src);
        if state.cursor > total {
            return Err(StoreError::Corrupt(format!(
                "reshape cursor {} past the migration total {total}",
                state.cursor
            )));
        }
        // Best-effort method recomputation for the final report; the
        // migration itself trusts only the persisted target layout.
        let (method, moved_fraction) = match kind {
            ReshapeKind::Add => {
                pdl_core::plan_add(&st.world.layout, target.layout.v() - st.world.layout.v())
                    .map(|p| (p.method, p.moved_fraction))
                    .unwrap_or((ReshapeMethod::Regenerated, 0.0))
            }
            ReshapeKind::Remove => pdl_core::plan_remove(&st.world.layout, &state.removed)
                .map(|p| (p.method, p.moved_fraction))
                .unwrap_or((ReshapeMethod::Regenerated, 0.0)),
        };
        let mut template = state.clone();
        template.phase = "migrate".into();
        template.cursor = 0;
        template.slide_done = 0;
        let from_v = st.world.layout.v();
        let rs = Arc::new(ReshapeRuntime {
            kind,
            target,
            tgt_redirect: state.tgt_redirect.clone(),
            scratch_base: state.scratch_base,
            total,
            cursor: AtomicU64::new(state.cursor),
            units_done: AtomicU64::new(0),
            slide_done: AtomicU64::new(0),
            capacity_after: state.capacity_after,
            tgt_locks: StripeLockTable::new(),
            step: Mutex::new(StepState::default()),
            batch_stripes: state.batch_stripes.max(1),
            checkpoint_every: state.checkpoint_every.max(1),
            from_v,
            capacity_before: cap_src,
            method,
            moved_fraction,
            removed: state.removed.clone(),
            state_template: template,
            started: Instant::now(),
        });
        st.reshape = Some(rs);
        st.epoch += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::backend::MemBackend;
    use crate::store::{fill_pattern, BlockStore};
    use pdl_core::RingLayout;

    fn filled_store(v: usize, k: usize, spares: usize, copies: usize) -> BlockStore<MemBackend> {
        let rl = RingLayout::for_v_k(v, k);
        let backend = MemBackend::new(v + spares, copies * rl.layout().size(), 64);
        let store = BlockStore::new(rl.layout().clone(), backend).unwrap();
        let mut buf = vec![0u8; 64];
        for addr in 0..store.blocks() {
            fill_pattern(addr, 7, &mut buf);
            store.write_block(addr, &buf).unwrap();
        }
        store
    }

    #[test]
    fn add_disk_roundtrip_mem() {
        let store = filled_store(5, 3, 1, 1);
        let before = store.blocks();
        let report = store.add_disks(&[5]).unwrap();
        assert_eq!(report.from_v, 5);
        assert_eq!(report.to_v, 6);
        assert_eq!(store.v(), 6);
        assert!(store.blocks() > before, "add grows capacity");
        assert!(!store.reshaping());
        let (mut buf, mut want) = (vec![0u8; 64], vec![0u8; 64]);
        for addr in 0..before {
            fill_pattern(addr, 7, &mut want);
            store.read_block(addr, &mut buf).unwrap();
            assert_eq!(buf, want, "block {addr} after add");
        }
        // New capacity reads back zero.
        for addr in before..store.blocks() {
            store.read_block(addr, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0), "fresh block {addr} is zero");
        }
        store.verify_parity().unwrap();
    }

    #[test]
    fn remove_disk_roundtrip_mem() {
        let store = filled_store(7, 3, 0, 1);
        let before = store.blocks();
        let report = store.remove_disks(&[2]).unwrap();
        assert_eq!(report.from_v, 7);
        assert_eq!(report.to_v, 6);
        assert_eq!(store.v(), 6);
        assert_eq!(store.blocks(), before, "remove preserves capacity");
        let (mut buf, mut want) = (vec![0u8; 64], vec![0u8; 64]);
        for addr in 0..before {
            fill_pattern(addr, 7, &mut want);
            store.read_block(addr, &mut buf).unwrap();
            assert_eq!(buf, want, "block {addr} after remove");
        }
        store.verify_parity().unwrap();
    }

    #[test]
    fn add_disk_copies_policy_stairway() {
        use crate::reshape::{CopiesPolicy, ReshapeOptions};
        // The 9→10 stairway: growing a 9-disk array by one disk under
        // `Auto` keeps the copy count (capacity steps up only by the
        // wider layout); `Exact(2)` climbs a full copy step. Either
        // way every pre-reshape block must survive bit-exact.
        let store = filled_store(9, 4, 1, 1);
        let before = store.blocks();
        assert!(
            store
                .begin_add_disks_with(
                    &[9],
                    &ReshapeOptions { target_copies: CopiesPolicy::Exact(0), ..Default::default() }
                )
                .is_err(),
            "zero copies cannot cover the source capacity"
        );
        let opts = ReshapeOptions { target_copies: CopiesPolicy::Exact(2), ..Default::default() };
        store.begin_add_disks_with(&[9], &opts).unwrap();
        let report = store.finish_reshape().unwrap();
        assert_eq!((report.from_v, report.to_v), (9, 10));
        assert!(
            report.capacity_after >= 2 * before,
            "two copies at v=10 at least double a one-copy v=9 array \
             ({} -> {})",
            before,
            report.capacity_after
        );
        let (mut buf, mut want) = (vec![0u8; 64], vec![0u8; 64]);
        for addr in 0..before {
            fill_pattern(addr, 7, &mut want);
            store.read_block(addr, &mut buf).unwrap();
            assert_eq!(buf, want, "block {addr} after stairway add");
        }
        store.verify_parity().unwrap();

        // PreservePerDiskUsage never yields less capacity than Auto.
        let auto = filled_store(9, 4, 1, 2);
        let auto_cap = auto.add_disks(&[9]).unwrap().capacity_after;
        let keep = filled_store(9, 4, 1, 2);
        let keep_opts = ReshapeOptions {
            target_copies: CopiesPolicy::PreservePerDiskUsage,
            ..Default::default()
        };
        keep.begin_add_disks_with(&[9], &keep_opts).unwrap();
        let keep_cap = keep.finish_reshape().unwrap().capacity_after;
        assert!(keep_cap >= auto_cap, "preserve ({keep_cap}) >= auto ({auto_cap})");
        keep.verify_parity().unwrap();
    }

    #[test]
    fn reshape_refuses_bad_requests() {
        let store = filled_store(5, 3, 1, 1);
        assert!(store.add_disks(&[]).is_err());
        assert!(store.add_disks(&[9]).is_err());
        assert!(store.add_disks(&[0]).is_err(), "disk 0 is already mapped");
        assert!(store.remove_disks(&[0, 1, 2]).is_err(), "would shrink below k + 1");
        assert!(store.complete_reshape().is_err(), "no active reshape");
    }
}
