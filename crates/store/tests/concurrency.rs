//! Concurrency suite: many client threads against one `BlockStore`
//! through `&self`, driven by the seeded stress harness
//! (`pdl_store::stress`) plus targeted same-stripe contention tests.
//!
//! Reproducibility mirrors the fault-injection harness: every
//! schedule derives from a seed written to `target/stress/<name>.seed`
//! before it runs (CI uploads the directory when the job fails),
//! `PDL_STRESS_SEED=<n>` replays one seed, and `PDL_STRESS_THREADS` /
//! `PDL_STRESS_OPS` reshape the run (the CI concurrency matrix sets
//! the thread count to 2/4/8).

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::stress::{self, RebuildMode, StressConfig};
use pdl_store::{Backend, BlockStore, CachePolicy, FileBackend, MemBackend, Rebuilder, StoreError};
use std::path::PathBuf;

const UNIT: usize = 64;
const COPIES: usize = 8;

/// Where CI picks up the seeds of a failed run.
fn seed_file(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/stress");
    std::fs::create_dir_all(&dir).expect("create seed dir");
    dir.join(format!("{name}.seed"))
}

fn record_seed(name: &str, seed: u64) {
    std::fs::write(seed_file(name), format!("PDL_STRESS_SEED={seed}\n"))
        .expect("record seed for CI");
}

/// Runs the stress harness and persists its observability snapshot
/// next to the seed (`target/stress/<name>.stats.json`) — CI uploads
/// these as artifacts on every run, pass or fail.
fn run_recorded<B: Backend + 'static>(
    name: &str,
    store: &BlockStore<B>,
    cfg: &StressConfig,
) -> stress::StressReport {
    let report = stress::run(store, cfg).unwrap();
    report
        .write_stats_json(seed_file(name).with_extension("stats.json"))
        .expect("record stats for CI");
    report
}

fn base_config(name: &str) -> StressConfig {
    let cfg = StressConfig { ops_per_thread: 300, ..StressConfig::default() }.with_env_overrides();
    record_seed(name, cfg.seed);
    cfg
}

/// Raises the default thread count (the racing tests want the
/// acceptance shape of 8 threads) while still honoring an explicit
/// `PDL_STRESS_THREADS` override — a replay at 2 threads must
/// actually run 2 threads.
fn with_default_threads(mut cfg: StressConfig, threads: usize) -> StressConfig {
    if std::env::var("PDL_STRESS_THREADS").is_err() {
        cfg.threads = threads;
    }
    cfg
}

fn xor_store_mem() -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let backend = MemBackend::new(9 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

fn pq_store_mem() -> BlockStore<MemBackend> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let backend = MemBackend::new(9 + 3, COPIES * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, backend).unwrap()
}

/// Runs `f` with a file-backed XOR store in a fresh temp dir.
fn with_xor_store_file(name: &str, f: impl FnOnce(BlockStore<FileBackend>)) {
    let dir = std::env::temp_dir().join(format!("pdl-conc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let backend = FileBackend::create(&dir, 9 + 2, COPIES * layout.size(), UNIT).unwrap();
    f(BlockStore::new(layout, backend).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `BlockStore` must be shareable across threads by reference — the
/// whole point of the `&self` write path.
#[test]
fn store_is_send_and_sync_mem() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BlockStore<MemBackend>>();
    assert_send_sync::<BlockStore<FileBackend>>();
}

#[test]
fn stress_mixed_mem() {
    let cfg = base_config("mixed_mem");
    let store = xor_store_mem();
    let report = run_recorded("mixed_mem", &store, &cfg);
    assert_eq!(report.reads + report.writes, cfg.threads * cfg.ops_per_thread);
    store.verify_parity().unwrap();
}

#[test]
fn stress_mixed_pq_mem() {
    let cfg = base_config("mixed_pq_mem");
    let store = pq_store_mem();
    run_recorded("mixed_pq_mem", &store, &cfg);
    store.verify_parity().unwrap();
}

#[test]
fn stress_mixed_file() {
    let cfg = base_config("mixed_file");
    with_xor_store_file("mixed", |store| {
        run_recorded("mixed_file", &store, &cfg);
        store.verify_parity().unwrap();
    });
}

#[test]
fn stress_degraded_then_rebuild_mem() {
    let cfg = StressConfig {
        fail_disk: Some(2),
        rebuild: RebuildMode::AtEnd { spare: 9 },
        ..base_config("degraded_mem")
    };
    let store = xor_store_mem();
    let report = run_recorded("degraded_mem", &store, &cfg);
    assert!(!store.is_degraded());
    assert_eq!(report.rebuild.as_ref().unwrap().failed_disk, 2);
    store.verify_parity().unwrap();
}

#[test]
fn stress_degraded_then_rebuild_file() {
    let cfg = StressConfig {
        fail_disk: Some(2),
        rebuild: RebuildMode::AtEnd { spare: 9 },
        ..base_config("degraded_file")
    };
    with_xor_store_file("degraded", |store| {
        run_recorded("degraded_file", &store, &cfg);
        assert!(!store.is_degraded());
        store.verify_parity().unwrap();
    });
}

/// The acceptance run: 8 threads of mixed traffic racing a live
/// rebuild of a wiped disk, then bit-exact readback + clean parity.
#[test]
fn stress_racing_rebuild_mem() {
    let cfg = with_default_threads(
        StressConfig {
            fail_disk: Some(1),
            rebuild: RebuildMode::Racing { spare: 9 },
            ..base_config("racing_mem")
        },
        8,
    );
    let store = xor_store_mem();
    let report = run_recorded("racing_mem", &store, &cfg);
    assert!(!store.is_degraded(), "racing rebuild completed");
    assert_eq!(report.rebuild.as_ref().unwrap().spare_disk, 9);
    assert_eq!(store.physical_disk(1), 9, "logical disk redirected onto the spare");
    store.verify_parity().unwrap();
}

#[test]
fn stress_racing_rebuild_file() {
    let cfg = with_default_threads(
        StressConfig {
            fail_disk: Some(1),
            rebuild: RebuildMode::Racing { spare: 9 },
            ..base_config("racing_file")
        },
        8,
    );
    with_xor_store_file("racing", |store| {
        run_recorded("racing_file", &store, &cfg);
        assert!(!store.is_degraded());
        store.verify_parity().unwrap();
    });
}

#[test]
fn stress_racing_rebuild_pq_mem() {
    let cfg = with_default_threads(
        StressConfig {
            fail_disk: Some(4),
            rebuild: RebuildMode::Racing { spare: 9 },
            ..base_config("racing_pq_mem")
        },
        8,
    );
    let store = pq_store_mem();
    run_recorded("racing_pq_mem", &store, &cfg);
    assert!(!store.is_degraded());
    store.verify_parity().unwrap();
}

/// Online reshape racing the stress mix: the array grows by one disk
/// while the client threads hammer it — begin, dual writes, batch
/// migration, and the commit flip all overlap live traffic — then
/// the usual bit-exact sweep plus clean parity on the *target*
/// layout.
#[test]
fn stress_racing_reshape_add_mem() {
    let cfg = with_default_threads(
        StressConfig {
            rebuild: RebuildMode::ReshapeAdd { added: 1 },
            ..base_config("reshape_add_mem")
        },
        8,
    );
    let store = xor_store_mem();
    let report = run_recorded("reshape_add_mem", &store, &cfg);
    assert_eq!(store.v(), 10, "racing add committed");
    assert_eq!(report.reshape.as_ref().unwrap().to_v, 10);
    assert!(!store.reshaping());
    store.verify_parity().unwrap();
}

#[test]
fn stress_racing_reshape_remove_mem() {
    let cfg = with_default_threads(
        StressConfig {
            rebuild: RebuildMode::ReshapeRemove { removed: 1 },
            ..base_config("reshape_remove_mem")
        },
        8,
    );
    let store = xor_store_mem();
    let blocks = store.blocks();
    let report = run_recorded("reshape_remove_mem", &store, &cfg);
    assert_eq!(store.v(), 8, "racing remove committed");
    assert_eq!(store.blocks(), blocks, "remove preserves capacity");
    assert_eq!(report.reshape.as_ref().unwrap().to_v, 8);
    store.verify_parity().unwrap();
}

#[test]
fn stress_racing_reshape_add_file() {
    let cfg = with_default_threads(
        StressConfig {
            rebuild: RebuildMode::ReshapeAdd { added: 1 },
            ..base_config("reshape_add_file")
        },
        8,
    );
    with_xor_store_file("reshapeadd", |store| {
        run_recorded("reshape_add_file", &store, &cfg);
        assert_eq!(store.v(), 10);
        store.verify_parity().unwrap();
    });
}

#[test]
fn stress_racing_reshape_remove_file() {
    let cfg = with_default_threads(
        StressConfig {
            rebuild: RebuildMode::ReshapeRemove { removed: 1 },
            ..base_config("reshape_remove_file")
        },
        8,
    );
    with_xor_store_file("reshaperemove", |store| {
        run_recorded("reshape_remove_file", &store, &cfg);
        assert_eq!(store.v(), 8);
        store.verify_parity().unwrap();
    });
}

/// Write-back policy for the dedicated cache stress runs: a small
/// budget keeps the eviction path hot. An explicit `PDL_CACHE` (the
/// CI cache matrix leg) still wins, so a replay honors the
/// environment exactly.
fn write_back_config(name: &str) -> StressConfig {
    let mut cfg = base_config(name);
    if std::env::var("PDL_CACHE").is_err() {
        cfg.cache = CachePolicy::WriteBack { max_dirty: 16 };
    }
    cfg
}

/// Seeded mixed traffic with write-back combining on: every read
/// must still verify bit-for-bit — against the cache before a flush,
/// against the backend after — and the end-of-run drain must leave
/// the parity invariants intact.
#[test]
fn stress_write_back_mixed_mem() {
    let cfg = write_back_config("wb_mixed_mem");
    let store = xor_store_mem();
    run_recorded("wb_mixed_mem", &store, &cfg);
    assert_eq!(store.dirty_cache_stripes(), 0, "run ends drained");
    store.verify_parity().unwrap();
}

#[test]
fn stress_write_back_mixed_pq_mem() {
    let cfg = write_back_config("wb_mixed_pq_mem");
    let store = pq_store_mem();
    run_recorded("wb_mixed_pq_mem", &store, &cfg);
    store.verify_parity().unwrap();
}

/// The write-back acceptance run: 8 threads of cached mixed traffic
/// racing a live rebuild of a wiped disk — flush-before-transition,
/// write-through-to-spare on evicted degraded stripes, and the
/// post-run drain must all compose to a bit-exact array.
#[test]
fn stress_write_back_racing_rebuild_mem() {
    let cfg = with_default_threads(
        StressConfig {
            fail_disk: Some(1),
            rebuild: RebuildMode::Racing { spare: 9 },
            ..write_back_config("wb_racing_mem")
        },
        8,
    );
    let store = xor_store_mem();
    run_recorded("wb_racing_mem", &store, &cfg);
    assert!(!store.is_degraded(), "racing rebuild completed under write-back");
    assert_eq!(store.physical_disk(1), 9, "logical disk redirected onto the spare");
    store.verify_parity().unwrap();
}

#[test]
fn stress_write_back_racing_rebuild_file() {
    let cfg = with_default_threads(
        StressConfig {
            fail_disk: Some(1),
            rebuild: RebuildMode::Racing { spare: 9 },
            ..write_back_config("wb_racing_file")
        },
        8,
    );
    with_xor_store_file("wbracing", |store| {
        run_recorded("wb_racing_file", &store, &cfg);
        assert!(!store.is_degraded());
        store.verify_parity().unwrap();
    });
}

/// Reshape under write-back: every migration batch must flush the
/// dirty cache entries covering its source range before copying, or
/// the target world is built from stale media. Racing clients keep
/// re-dirtying stripes the whole time.
#[test]
fn stress_write_back_racing_reshape_add_mem() {
    let cfg = with_default_threads(
        StressConfig {
            rebuild: RebuildMode::ReshapeAdd { added: 1 },
            ..write_back_config("wb_reshape_add_mem")
        },
        8,
    );
    let store = xor_store_mem();
    run_recorded("wb_reshape_add_mem", &store, &cfg);
    assert_eq!(store.v(), 10);
    assert!(!store.reshaping());
    store.verify_parity().unwrap();
}

/// Deterministic flush-before-transition semantics: cached writes
/// whose stripes cross a failed disk must mark its medium stale at
/// the latest when `restore_disk` forces the flush — so restore is
/// refused for exactly the histories write-through would refuse.
#[test]
fn write_back_flush_marks_stale_before_restore_mem() {
    let store = xor_store_mem();
    store.set_cache_policy(CachePolicy::write_back()).unwrap();
    store.fail_disk(2).unwrap();
    // Dirty every stripe of copy 0: some of them cross disk 2 (their
    // parity or data unit lives there), so the eventual flush must
    // skip units on it and poison the restore.
    let per_copy = store.stripe_map().data_units_per_copy();
    let block = vec![0xeeu8; UNIT];
    for addr in 0..per_copy {
        store.write_block(addr, &block).unwrap();
    }
    assert!(store.dirty_cache_stripes() > 0, "writes deferred");
    // The restore itself drains the cache (flush-before-transition)
    // and must then refuse: the medium is stale.
    assert!(matches!(store.restore_disk(2), Err(StoreError::RebuildRequired { disk: 2, .. })));
    // A rebuild drains the failure; all acknowledged writes survive.
    Rebuilder::default().rebuild(&store, 9).unwrap();
    let mut out = vec![0u8; UNIT];
    for addr in 0..per_copy {
        store.read_block(addr, &mut out).unwrap();
        assert_eq!(out, block, "block {addr} lost after flush + rebuild");
    }
    store.verify_parity().unwrap();
}

/// Cached writes to a *failed* disk's blocks: served from the cache
/// while dirty, erasure-decoded to the same bytes after the flush,
/// and landed on the spare by the rebuild.
#[test]
fn write_back_degraded_write_read_cycle_mem() {
    let store = xor_store_mem();
    store.set_cache_policy(CachePolicy::write_back()).unwrap();
    let addrs = stripe_addrs(&store, 0);
    let lost_addr = addrs[0];
    let lost_disk = store.stripe_map().locate(lost_addr).disk as usize;
    store.backend().wipe_disk(store.physical_disk(lost_disk)).unwrap();
    store.fail_disk(lost_disk).unwrap();
    let block = vec![0x42u8; UNIT];
    store.write_block(lost_addr, &block).unwrap();
    let mut out = vec![0u8; UNIT];
    store.read_block(lost_addr, &mut out).unwrap();
    assert_eq!(out, block, "dirty lost block served from the cache");
    store.flush().unwrap();
    store.read_block(lost_addr, &mut out).unwrap();
    assert_eq!(out, block, "flushed lost block decodes from surviving parity");
    Rebuilder::default().rebuild(&store, 9).unwrap();
    store.read_block(lost_addr, &mut out).unwrap();
    assert_eq!(out, block, "rebuilt block holds the cached write");
    store.verify_parity().unwrap();
}

/// The logical data addresses of one stripe in copy 0, plus the
/// stripe index.
fn stripe_addrs<B: Backend>(store: &BlockStore<B>, si: usize) -> Vec<usize> {
    (0..store.stripe_map().data_units_per_copy())
        .filter(|&a| store.stripe_map().stripe_of(a) == si)
        .collect()
}

/// Many threads RMW-hammering *the same stripe* — each owns one data
/// block, all collide on the stripe's parity unit. The shard lock
/// must serialize the parity read-modify-writes or the stripe
/// invariant shatters.
#[test]
fn same_stripe_rmw_keeps_parity_mem() {
    let cfg = base_config("same_stripe_mem");
    let store = xor_store_mem();
    let addrs = stripe_addrs(&store, 0);
    assert!(addrs.len() >= 2, "stripe has at least two data units");
    let rounds = 200usize;
    std::thread::scope(|s| {
        for (t, &addr) in addrs.iter().enumerate() {
            let store = &store;
            let seed = cfg.seed;
            s.spawn(move || {
                let mut block = vec![0u8; UNIT];
                for r in 0..rounds {
                    pdl_store::fill_pattern(
                        addr,
                        seed ^ (((t as u64) << 32) | (r as u64 + 1)),
                        &mut block,
                    );
                    store.write_block(addr, &block).unwrap();
                }
            });
        }
    });
    // Every interleaving of the RMWs must leave the XOR invariant
    // intact — this is exactly what unsynchronized parity updates
    // lose (two writers both read old parity, last write wins, the
    // other's delta evaporates).
    store.verify_parity().unwrap();
    // And each block holds its owner's last write.
    let mut got = vec![0u8; UNIT];
    let mut want = vec![0u8; UNIT];
    for (t, &addr) in addrs.iter().enumerate() {
        store.read_block(addr, &mut got).unwrap();
        pdl_store::fill_pattern(addr, cfg.seed ^ (((t as u64) << 32) | rounds as u64), &mut want);
        assert_eq!(got, want, "seed {}: block {addr} lost its last write", cfg.seed);
    }
}

#[test]
fn same_stripe_rmw_keeps_parity_file() {
    let cfg = base_config("same_stripe_file");
    with_xor_store_file("samestripe", |store| {
        let addrs = stripe_addrs(&store, 0);
        let rounds = 100usize;
        std::thread::scope(|s| {
            for (t, &addr) in addrs.iter().enumerate() {
                let store = &store;
                let seed = cfg.seed;
                s.spawn(move || {
                    let mut block = vec![0u8; UNIT];
                    for r in 0..rounds {
                        pdl_store::fill_pattern(
                            addr,
                            seed ^ (((t as u64) << 32) | (r as u64 + 1)),
                            &mut block,
                        );
                        store.write_block(addr, &block).unwrap();
                    }
                });
            }
        });
        store.verify_parity().unwrap();
    });
}

/// Concurrent **degraded reads** of a lost block while other threads
/// RMW the *same stripe*: every decode must see the stripe at a
/// parity-consistent instant (shared shard lock vs. the writers'
/// exclusive one) and reconstruct the unchanged lost block exactly.
#[test]
fn degraded_reads_race_same_stripe_writes_mem() {
    let cfg = base_config("degraded_race_mem");
    let store = xor_store_mem();
    let addrs = stripe_addrs(&store, 0);
    assert!(addrs.len() >= 2);
    // Give every block of the stripe known content, then lose the
    // disk under the first data block. Its value is now only
    // reachable through the decode.
    let mut block = vec![0u8; UNIT];
    for &addr in &addrs {
        pdl_store::fill_pattern(addr, cfg.seed, &mut block);
        store.write_block(addr, &block).unwrap();
    }
    let lost_addr = addrs[0];
    let lost_disk = store.stripe_map().locate(lost_addr).disk as usize;
    store.backend().wipe_disk(store.physical_disk(lost_disk)).unwrap();
    store.fail_disk(lost_disk).unwrap();
    // Writers keep churning the *other* data blocks of the stripe
    // (never the lost one, so its expected bytes stay fixed); readers
    // decode the lost block concurrently and demand exactness.
    let rounds = 150usize;
    let readers = 4usize;
    std::thread::scope(|s| {
        for (t, &addr) in addrs.iter().enumerate().skip(1) {
            if store.stripe_map().locate(addr).disk as usize == lost_disk {
                continue;
            }
            let store = &store;
            let seed = cfg.seed;
            s.spawn(move || {
                let mut block = vec![0u8; UNIT];
                for r in 0..rounds {
                    pdl_store::fill_pattern(
                        addr,
                        seed ^ (((t as u64) << 32) | (r as u64 + 1)),
                        &mut block,
                    );
                    store.write_block(addr, &block).unwrap();
                }
            });
        }
        for _ in 0..readers {
            let store = &store;
            let seed = cfg.seed;
            s.spawn(move || {
                let mut got = vec![0u8; UNIT];
                let mut want = vec![0u8; UNIT];
                pdl_store::fill_pattern(lost_addr, seed, &mut want);
                for i in 0..rounds {
                    store.read_block(lost_addr, &mut got).unwrap();
                    assert_eq!(
                        got, want,
                        "seed {seed}: degraded read {i} of block {lost_addr} decoded garbage"
                    );
                }
            });
        }
    });
    // Drain the failure and prove the stripe survived the contention.
    Rebuilder::default().rebuild(&store, 9).unwrap();
    store.verify_parity().unwrap();
}

/// Failure-event error paths never move the I/O counters, and
/// counters are monotonic across successful transitions too.
#[test]
fn counters_monotonic_across_failure_events_mem() {
    let store = xor_store_mem();
    let block = vec![0x5au8; UNIT];
    store.write_block(0, &block).unwrap();
    let mut out = vec![0u8; UNIT];
    store.read_block(0, &mut out).unwrap();
    let reads0 = store.read_counts();
    let writes0 = store.write_counts();

    // Error paths: out of range, restore of a healthy disk, double
    // fail, over-tolerance fail — none may touch a counter.
    assert!(matches!(store.fail_disk(99), Err(StoreError::OutOfRange { .. })));
    assert!(matches!(store.restore_disk(3), Err(StoreError::NotFailed(3))));
    store.fail_disk(3).unwrap();
    assert!(matches!(store.fail_disk(3), Err(StoreError::AlreadyFailed(3))));
    assert!(matches!(store.fail_disk(4), Err(StoreError::TooManyFailures { .. })));
    store.restore_disk(3).unwrap();
    assert_eq!(store.read_counts(), reads0, "failure events moved read counters");
    assert_eq!(store.write_counts(), writes0, "failure events moved write counters");

    // Successful transitions interleaved with traffic: counters only
    // ever grow.
    store.fail_disk(1).unwrap();
    store.read_block(0, &mut out).unwrap();
    store.restore_disk(1).unwrap();
    store.write_block(1, &block).unwrap();
    let reads1 = store.read_counts();
    let writes1 = store.write_counts();
    assert!(reads1.iter().zip(&reads0).all(|(a, b)| a >= b), "read counters regressed");
    assert!(writes1.iter().zip(&writes0).all(|(a, b)| a >= b), "write counters regressed");

    // reset_counters is the one sanctioned way down.
    store.reset_counters();
    assert!(store.read_counts().iter().all(|&c| c == 0));
    assert!(store.write_counts().iter().all(|&c| c == 0));
}

/// The failure-state epoch observably brackets every transition, and
/// restore of a disk whose rebuild is running is refused.
#[test]
fn epoch_and_rebuild_in_progress_guards_mem() {
    let store = xor_store_mem();
    let e0 = store.epoch();
    store.fail_disk(0).unwrap();
    let e1 = store.epoch();
    assert!(e1 > e0, "fail_disk bumps the epoch");
    assert_eq!(store.rebuilding(), None);
    let report = Rebuilder::default().rebuild(&store, 9).unwrap();
    assert_eq!(report.failed_disk, 0);
    assert!(store.epoch() > e1, "rebuild bumps the epoch");
    assert_eq!(store.rebuilding(), None, "registration cleared on completion");
    // A spare that is now mapped is no longer a valid target.
    store.fail_disk(1).unwrap();
    assert!(matches!(Rebuilder::default().rebuild(&store, 9), Err(StoreError::InvalidSpare(9))));
    store.restore_disk(1).unwrap();
}
