//! The online-reshape battery: differential racing schedules against
//! a shadow model (reads/writes/fail/restore concurrent with
//! `add_disks`/`remove_disks` at 2/4/8 threads, mem + file backends,
//! XOR and P+Q), crash-resume from every persisted migration
//! checkpoint, commit-crash redo (in-memory retry and reopen paths),
//! and post-reshape invariants: the (k−1)/(v−1) rebuild balance on
//! the target layout, clean parity, and vectored-I/O accounting pins
//! on the migration engine.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    create_file_store, fill_pattern, open_file_store, Backend, BlockStore, FileBackend, MemBackend,
    Rebuilder, ReshapeOptions, StoreError, StoreMeta, META_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const UNIT: usize = 64;

/// Deterministic xorshift64* — the battery must replay from its seed
/// alone, with no dependence on crate-external RNG state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

fn prefill<B: Backend>(store: &BlockStore<B>, salt: u64) {
    let mut block = vec![0u8; store.unit_size()];
    for addr in 0..store.blocks() {
        fill_pattern(addr, salt, &mut block);
        store.write_block(addr, &block).unwrap();
    }
}

/// First physical disk not mapped to any logical disk.
fn first_spare<B: Backend>(store: &BlockStore<B>) -> usize {
    let mapped: Vec<usize> = (0..store.v()).map(|d| store.physical_disk(d)).collect();
    (0..store.backend().disks())
        .find(|p| !mapped.contains(p))
        .expect("an unmapped spare survives the reshape")
}

#[derive(Clone, Copy)]
enum Dir {
    Add(usize),
    Remove(usize),
}

/// The differential core: `threads` clients of seeded mixed traffic
/// over disjoint regions — every read checked bit-for-bit against a
/// shadow salt model — while one thread runs the whole reshape and
/// another injects a fail/restore schedule. After the race: a full
/// sweep, zeroed new capacity (on add), and clean parity.
fn racing_differential<B: Backend>(store: &BlockStore<B>, threads: usize, seed: u64, dir: Dir) {
    let blocks = store.blocks();
    let unit = store.unit_size();
    let ops = 150usize;
    prefill(store, seed);
    let salts: Vec<AtomicU64> = (0..blocks).map(|_| AtomicU64::new(seed)).collect();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done = &done;
        let salts = &salts;
        s.spawn(move || {
            // Let the clients take the field so begin, every migration
            // batch, and the commit flip all overlap live traffic.
            std::thread::sleep(Duration::from_millis(1));
            let res = match dir {
                Dir::Add(n) => {
                    let mapped: Vec<usize> =
                        (0..store.v()).map(|d| store.physical_disk(d)).collect();
                    let joining: Vec<usize> = (0..store.backend().disks())
                        .filter(|p| !mapped.contains(p))
                        .take(n)
                        .collect();
                    assert_eq!(joining.len(), n, "seed {seed}: not enough spares to add");
                    store.add_disks(&joining)
                }
                Dir::Remove(n) => {
                    let v = store.v();
                    store.remove_disks(&(v - n..v).collect::<Vec<usize>>())
                }
            };
            res.unwrap_or_else(|e| panic!("seed {seed}: racing reshape failed: {e}"));
            done.store(true, Ordering::Release);
        });
        // Fail/restore schedule racing the reshape. Under write-through
        // traffic the first flush that skips the failed disk marks its
        // medium stale, so restore is usually refused — the run then
        // stays degraded and the migration must erasure-decode the
        // disk's units. Both outcomes are valid schedules.
        s.spawn(move || {
            while !done.load(Ordering::Acquire) {
                if store.fail_disk(1).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(300));
                match store.restore_disk(1) {
                    Ok(()) => {}
                    Err(StoreError::RebuildRequired { .. }) => break,
                    Err(e) => panic!("seed {seed}: restore: {e}"),
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        let per = blocks / threads;
        assert!(per >= 4, "store too small for {threads} threads");
        for t in 0..threads {
            let lo = t * per;
            let hi = if t + 1 == threads { blocks } else { lo + per };
            s.spawn(move || {
                let mut rng = Rng(seed ^ ((t as u64 + 1) << 32) | 1);
                let mut buf = vec![0u8; 4 * unit];
                let mut want = vec![0u8; unit];
                for i in 0..ops {
                    let len = 1 + rng.below(4);
                    let addr = lo + rng.below(hi - lo - len + 1);
                    if rng.coin() {
                        let out = &mut buf[..len * unit];
                        store
                            .read_blocks(addr, out)
                            .unwrap_or_else(|e| panic!("seed {seed} t{t} op {i}: read: {e}"));
                        for (j, chunk) in out.chunks_exact(unit).enumerate() {
                            let salt = salts[addr + j].load(Ordering::Relaxed);
                            fill_pattern(addr + j, salt, &mut want);
                            assert_eq!(
                                chunk,
                                &want[..],
                                "seed {seed} t{t} op {i}: block {} diverged from the model",
                                addr + j
                            );
                        }
                    } else {
                        let salt = seed ^ ((t as u64 + 1) << 40) ^ ((i as u64 + 1) << 8);
                        let data = &mut buf[..len * unit];
                        for (j, chunk) in data.chunks_exact_mut(unit).enumerate() {
                            fill_pattern(addr + j, salt + j as u64, chunk);
                        }
                        store
                            .write_blocks(addr, data)
                            .unwrap_or_else(|e| panic!("seed {seed} t{t} op {i}: write: {e}"));
                        for j in 0..len {
                            salts[addr + j].store(salt + j as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    match dir {
        Dir::Add(_) => assert!(store.blocks() > blocks, "add grew capacity"),
        Dir::Remove(_) => assert_eq!(store.blocks(), blocks, "remove preserves capacity"),
    }
    // If the fail/restore schedule left the array degraded, drain the
    // failure onto a surviving spare so parity is checkable — the
    // sweep below exercises the decode path either way.
    if store.is_degraded() {
        Rebuilder::default()
            .rebuild(store, first_spare(store))
            .unwrap_or_else(|e| panic!("seed {seed}: post-run rebuild: {e}"));
    }
    let mut got = vec![0u8; unit];
    let mut want = vec![0u8; unit];
    for (addr, salt) in salts.iter().enumerate() {
        store.read_block(addr, &mut got).unwrap();
        fill_pattern(addr, salt.load(Ordering::Relaxed), &mut want);
        assert_eq!(got, want, "seed {seed}: block {addr} corrupted after reshape");
    }
    for addr in blocks..store.blocks() {
        store.read_block(addr, &mut got).unwrap();
        assert!(got.iter().all(|&b| b == 0), "seed {seed}: new block {addr} not zero-filled");
    }
    store.verify_parity().unwrap();
}

fn xor_store_mem(v: usize, k: usize, copies: usize, spares: usize) -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(v, k).layout().clone();
    let backend = MemBackend::new(v + spares, copies * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

fn pq_store_mem(v: usize, k: usize, copies: usize, spares: usize) -> BlockStore<MemBackend> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap();
    let backend = MemBackend::new(v + spares, copies * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, backend).unwrap()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdl-reshape-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn racing_add_differential_xor_mem() {
    for (i, threads) in [2usize, 4, 8].into_iter().enumerate() {
        let store = xor_store_mem(5, 3, 2, 2);
        racing_differential(&store, threads, 0xadd0 + i as u64, Dir::Add(1));
        assert_eq!(store.v(), 6);
    }
}

#[test]
fn racing_remove_differential_xor_mem() {
    for (i, threads) in [2usize, 4, 8].into_iter().enumerate() {
        let store = xor_store_mem(7, 3, 2, 1);
        racing_differential(&store, threads, 0x5e30 + i as u64, Dir::Remove(1));
        assert_eq!(store.v(), 6);
    }
}

#[test]
fn racing_add_differential_pq_mem() {
    for (i, threads) in [2usize, 8].into_iter().enumerate() {
        let store = pq_store_mem(9, 4, 1, 3);
        racing_differential(&store, threads, 0xbead + i as u64, Dir::Add(1));
        assert_eq!(store.v(), 10);
    }
}

#[test]
fn racing_remove_differential_pq_mem() {
    let store = pq_store_mem(9, 4, 1, 2);
    racing_differential(&store, 4, 0xfade, Dir::Remove(1));
    assert_eq!(store.v(), 8);
}

#[test]
fn racing_add_differential_xor_file() {
    let dir = tmp_dir("addfile");
    let layout = RingLayout::for_v_k(5, 3).layout().clone();
    let backend = FileBackend::create(&dir, 5 + 2, 2 * layout.size(), UNIT).unwrap();
    let store = BlockStore::new(layout, backend).unwrap();
    racing_differential(&store, 8, 0xf11e, Dir::Add(1));
    assert_eq!(store.v(), 6);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn racing_remove_differential_pq_file() {
    let dir = tmp_dir("rmpqfile");
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let backend = FileBackend::create(&dir, 9 + 2, dp.layout().size(), UNIT).unwrap();
    let store = BlockStore::new_pq(dp, backend).unwrap();
    racing_differential(&store, 4, 0x9f11, Dir::Remove(1));
    assert_eq!(store.v(), 8);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Copies every regular file of an array directory (disk files,
/// `store.json`, `mapping.json`) — the crash image a power cut at
/// that instant would leave behind.
fn snapshot_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        if e.file_type().unwrap().is_file() {
            std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
        }
    }
}

fn persisted_reshape_cursor(dir: &Path) -> Option<(String, u64)> {
    let json = std::fs::read_to_string(dir.join(META_FILE)).unwrap();
    let meta = StoreMeta::from_json(&json).unwrap();
    meta.reshape.map(|rs| (rs.phase, rs.cursor))
}

/// Satellite 2: snapshot the directory at *every* migration
/// checkpoint boundary, reopen each snapshot as a crashed store, and
/// prove the reshape resumes at the persisted cursor (never restarts)
/// and finishes bit-exact.
#[test]
fn crash_resume_at_every_checkpoint_file() {
    let dir = tmp_dir("ckpt");
    let layout = RingLayout::for_v_k(5, 3).layout().clone();
    let store = create_file_store(&dir, layout, UNIT, 2, 2).unwrap();
    let seed = 0xc4a5_u64;
    let blocks = store.blocks();
    prefill(&store, seed);
    let opts = ReshapeOptions { batch_stripes: 7, checkpoint_every: 1, ..Default::default() };
    store.begin_add_disks_with(&[5], &opts).unwrap();
    // Snapshot 0 is the begin checkpoint (cursor 0); one more follows
    // every batch.
    let mut snaps: Vec<PathBuf> = Vec::new();
    let take_snapshot = |snaps: &mut Vec<PathBuf>| {
        let s = tmp_dir(&format!("ckpt-snap{}", snaps.len()));
        snapshot_dir(&dir, &s);
        snaps.push(s);
    };
    take_snapshot(&mut snaps);
    loop {
        let done = store.reshape_step(1).unwrap();
        take_snapshot(&mut snaps);
        if done {
            break;
        }
    }
    assert!(snaps.len() >= 4, "several checkpoint boundaries to crash at");
    // The original store commits cleanly.
    let report = store.complete_reshape().unwrap();
    assert_eq!(report.to_v, 6);
    drop(store);

    let mut saw_midway = false;
    for snap in &snaps {
        let (phase, cursor) = persisted_reshape_cursor(snap).expect("snapshot is mid-reshape");
        assert_eq!(phase, "migrate");
        let re = open_file_store(snap).unwrap();
        assert!(re.reshaping(), "reopened snapshot resumes the reshape");
        let progress = re.stats().reshape.expect("reshape visible in stats");
        assert_eq!(
            progress.stripes_done, cursor,
            "resumed cursor equals the persisted checkpoint — resumed, not restarted"
        );
        if cursor > 0 && progress.stripes_done < progress.stripes_total {
            saw_midway = true;
        }
        let rep = re.finish_reshape().unwrap();
        assert_eq!(rep.to_v, 6);
        assert_eq!(re.v(), 6);
        let mut got = vec![0u8; UNIT];
        let mut want = vec![0u8; UNIT];
        for addr in 0..blocks {
            re.read_block(addr, &mut got).unwrap();
            fill_pattern(addr, seed, &mut want);
            assert_eq!(got, want, "block {addr} corrupted resuming from {snap:?}");
        }
        re.verify_parity().unwrap();
        drop(re);
        std::fs::remove_dir_all(snap).unwrap();
    }
    assert!(saw_midway, "at least one snapshot crashed strictly mid-migration");

    // The committed original reopens at the target geometry too.
    let re = open_file_store(&dir).unwrap();
    assert_eq!(re.v(), 6);
    assert!(!re.reshaping());
    re.verify_parity().unwrap();
    drop(re);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A commit interrupted in-process (injected fault mid-slide) retries
/// from the watermark in memory — never re-reading scratch rows its
/// own first attempt already slid over.
#[test]
fn commit_fault_in_memory_retry_mem() {
    let store = xor_store_mem(5, 3, 2, 2);
    let seed = 0x1e77_u64;
    let blocks = store.blocks();
    prefill(&store, seed);
    store.begin_add_disks(&[5]).unwrap();
    while !store.reshape_step(8).unwrap() {}
    assert_eq!(store.blocks(), blocks, "capacity flips only at commit");
    let opts = ReshapeOptions { commit_fault_after_chunks: Some(1), ..Default::default() };
    let err = store.complete_reshape_with(&opts).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt(_)), "injected fault surfaces");
    assert!(store.reshaping(), "faulted commit leaves the reshape active");
    let report = store.complete_reshape().unwrap();
    assert_eq!(report.to_v, 6);
    assert!(store.blocks() > blocks);
    let mut got = vec![0u8; UNIT];
    let mut want = vec![0u8; UNIT];
    for addr in 0..blocks {
        store.read_block(addr, &mut got).unwrap();
        fill_pattern(addr, seed, &mut want);
        assert_eq!(got, want, "block {addr} corrupted by the commit retry");
    }
    store.verify_parity().unwrap();
}

/// A commit interrupted by a crash (process gone, `phase = "commit"`
/// on disk) is statically redone on reopen: slide from the persisted
/// watermark, mapping, final metadata, trim.
#[test]
fn commit_fault_reopen_redo_file() {
    let dir = tmp_dir("commit");
    let layout = RingLayout::for_v_k(5, 3).layout().clone();
    let store = create_file_store(&dir, layout, UNIT, 2, 2).unwrap();
    let seed = 0xd00d_u64;
    let blocks = store.blocks();
    prefill(&store, seed);
    store.begin_add_disks(&[5]).unwrap();
    while !store.reshape_step(8).unwrap() {}
    let opts = ReshapeOptions { commit_fault_after_chunks: Some(1), ..Default::default() };
    store.complete_reshape_with(&opts).unwrap_err();
    drop(store); // the crash
    let (phase, _) = persisted_reshape_cursor(&dir).expect("commit watermark persisted");
    assert_eq!(phase, "commit");
    let re = open_file_store(&dir).unwrap();
    assert!(!re.reshaping(), "reopen redid the commit");
    assert_eq!(re.v(), 6);
    assert!(re.blocks() > blocks);
    let mut got = vec![0u8; UNIT];
    let mut want = vec![0u8; UNIT];
    for addr in 0..blocks {
        re.read_block(addr, &mut got).unwrap();
        fill_pattern(addr, seed, &mut want);
        assert_eq!(got, want, "block {addr} corrupted by the redo");
    }
    re.verify_parity().unwrap();
    drop(re);
    // Stability: a second reopen sees a plain committed array.
    let re2 = open_file_store(&dir).unwrap();
    assert_eq!(re2.v(), 6);
    assert!(!re2.reshaping());
    re2.verify_parity().unwrap();
    drop(re2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 3a: the paper's (k−1)/(v−1) rebuild balance holds on the
/// *target* layout — a disk failed after an add-reshape rebuilds with
/// the declustered read fraction of the new geometry.
#[test]
fn post_reshape_rebuild_balance_and_parity_mem() {
    let store = xor_store_mem(9, 4, 4, 2);
    prefill(&store, 0xba1a);
    let report = store.add_disks(&[9]).unwrap();
    assert_eq!(report.to_v, 10);
    assert_eq!(store.v(), 10);
    store.verify_parity().unwrap();
    store.fail_disk(0).unwrap();
    let rb = Rebuilder::default().rebuild(&store, 10).unwrap();
    let expect = (4.0 - 1.0) / (10.0 - 1.0);
    let got = rb.mean_read_fraction();
    assert!(
        (got - expect).abs() < 0.05,
        "target-layout rebuild balance: mean read fraction {got:.4}, want (k-1)/(v-1) = {expect:.4}"
    );
    store.verify_parity().unwrap();
}

/// Satellite 3b: migration I/O is vectored — with one batch covering
/// one full target copy (the default), the engine issues at most one
/// read call per source disk and one write call per target disk — and
/// the per-disk unit counters only ever grow.
#[test]
fn migration_io_vectored_and_monotone_mem() {
    let store = xor_store_mem(5, 3, 1, 1);
    prefill(&store, 0x10ac);
    let before_reads: Vec<u64> = (0..6).map(|p| store.backend().read_count(p)).collect();
    let before_writes: Vec<u64> = (0..6).map(|p| store.backend().write_count(p)).collect();
    store.begin_add_disks(&[5]).unwrap();
    store.reset_counters();
    let done = store.reshape_step(1).unwrap();
    assert!(done, "one default batch covers the whole single-copy migration");
    for p in 0..5 {
        assert!(
            store.backend().read_calls(p) <= 1,
            "source disk {p}: {} read calls in one batch (want ≤ 1 vectored call)",
            store.backend().read_calls(p)
        );
    }
    for p in 0..6 {
        assert!(
            store.backend().write_calls(p) <= 1,
            "target disk {p}: {} write calls in one batch (want ≤ 1 vectored call)",
            store.backend().write_calls(p)
        );
    }
    let mid_reads: Vec<u64> = (0..6).map(|p| store.backend().read_count(p)).collect();
    let mid_writes: Vec<u64> = (0..6).map(|p| store.backend().write_count(p)).collect();
    store.complete_reshape().unwrap();
    let after_reads: Vec<u64> = (0..6).map(|p| store.backend().read_count(p)).collect();
    let after_writes: Vec<u64> = (0..6).map(|p| store.backend().write_count(p)).collect();
    for p in 0..6 {
        assert!(after_reads[p] >= mid_reads[p], "disk {p} read units regressed");
        assert!(after_writes[p] >= mid_writes[p], "disk {p} write units regressed");
    }
    // reset_counters is the only sanctioned way down; the snapshot
    // taken before the reshape began is unrelated to these.
    drop((before_reads, before_writes));
    assert_eq!(store.v(), 6);
    store.verify_parity().unwrap();
}
