//! IO-accounting regression tests: the per-disk backend counters
//! (units transferred *and* backend calls), read through the store's
//! observability snapshot ([`pdl_store::StatsSnapshot`]), pin down
//! exactly how much physical IO each store path issues — so a
//! regression that silently de-coalesces a batched path, or
//! reintroduces reads on the zero-read full-stripe write, fails here,
//! not in a benchmark.
//!
//! Every budget is asserted on a **snapshot diff**
//! ([`pdl_store::IoTotals::since`]) bracketing exactly the operation
//! under test, so the assertions compose with any setup traffic and
//! exercise the same `stats()` plumbing the benches and CI artifacts
//! rely on.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    Backend, BlockStore, CachePolicy, IoTotals, MemBackend, RebuildProgress, Rebuilder,
    StatsSnapshot,
};

const UNIT: usize = 128;

fn ring_store(v: usize, k: usize, copies: usize) -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(v, k).layout().clone();
    let backend = MemBackend::new(v + 1, copies * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

fn pq_store(v: usize, k: usize, copies: usize) -> BlockStore<MemBackend> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap();
    let backend = MemBackend::new(v + 2, copies * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, backend).unwrap()
}

/// Aggregate physical IO so far, via the observability snapshot.
fn totals<B: Backend>(store: &BlockStore<B>) -> IoTotals {
    store.stats().io_totals()
}

/// `(read_units, write_units, read_calls, write_calls)` since `t0`.
fn diff<B: Backend>(store: &BlockStore<B>, t0: &IoTotals) -> (u64, u64, u64, u64) {
    let d = totals(store).since(t0);
    (d.read_units, d.write_units, d.read_calls, d.write_calls)
}

/// Per-logical-disk read calls since the `before` snapshot.
fn disk_read_calls(now: &StatsSnapshot, before: &StatsSnapshot, d: usize) -> u64 {
    now.disks[d].read_calls.saturating_sub(before.disks[d].read_calls)
}

/// A full-stripe write is exactly `k` unit writes (k−1 data + P) and
/// zero reads — the paper's Condition-5 large-write optimization.
#[test]
fn full_stripe_write_is_k_writes_zero_reads() {
    let store = ring_store(7, 4, 1);
    let k_data = 3; // k - 1 data units per XOR stripe
    let data = vec![0x5au8; k_data * UNIT];
    let t0 = totals(&store);
    store.write_blocks(0, &data).unwrap();
    let (r, w, _, _) = diff(&store, &t0);
    assert_eq!(r, 0, "full-stripe write must not read");
    assert_eq!(w, 4, "full-stripe write is exactly k = 4 unit writes");
    store.verify_parity().unwrap();
}

/// Under P+Q a full-stripe write is k−2 data units plus P plus Q —
/// still exactly `k` unit writes and zero reads.
#[test]
fn pq_full_stripe_write_is_k_writes_zero_reads() {
    let store = pq_store(9, 4, 1);
    let k_data = 2; // k - 2 data units per P+Q stripe
    let data = vec![0xa5u8; k_data * UNIT];
    let t0 = totals(&store);
    store.write_blocks(0, &data).unwrap();
    let (r, w, _, _) = diff(&store, &t0);
    assert_eq!(r, 0, "P+Q full-stripe write must not read");
    assert_eq!(w, 4, "P+Q full-stripe write is exactly k = 4 unit writes");
    store.verify_parity().unwrap();
}

/// A sequential multi-stripe read coalesces to **one** vectored
/// backend call per touched disk when the wanted units are contiguous
/// (here: the first six stripes of a ring layout, whose data units
/// occupy offsets 0.. on every disk they touch).
#[test]
fn sequential_stripe_read_is_one_call_per_disk() {
    let store = ring_store(7, 4, 1);
    let k_data = 3;
    let stripes = 6;
    let data: Vec<u8> = (0..stripes * k_data * UNIT).map(|i| (i % 251) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    let before = store.stats();
    let mut out = vec![0u8; data.len()];
    store.read_blocks(0, &mut out).unwrap();
    assert_eq!(out, data, "coalesced read returns the written bytes");
    let now = store.stats();
    let mut touched = 0u64;
    for d in 0..store.v() {
        let calls = disk_read_calls(&now, &before, d);
        assert!(
            calls <= 1,
            "disk {d}: sequential stripe read must coalesce to 1 vectored call, got {calls}"
        );
        touched += calls;
    }
    let r = now.io_totals().since(&before.io_totals()).read_units;
    assert!(r >= (stripes * k_data) as u64, "every requested unit is transferred");
    assert!(touched >= 2, "a multi-stripe read touches several disks");
}

/// A whole-copy sequential read stays within **two** vectored calls
/// per disk: each disk's data units form at most two contiguous
/// fragments around its clustered parity region, and the planner
/// deliberately does not bridge wide parity holes (reading a wide
/// hole costs more bytes than the saved call).
#[test]
fn sequential_copy_read_coalesces_per_disk() {
    let store = ring_store(7, 4, 1);
    let blocks = store.blocks();
    let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 251) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    let before = store.stats();
    let mut out = vec![0u8; blocks * UNIT];
    store.read_blocks(0, &mut out).unwrap();
    assert_eq!(out, data, "coalesced read returns the written bytes");
    let now = store.stats();
    for d in 0..store.v() {
        let calls = disk_read_calls(&now, &before, d);
        assert!(
            calls <= 2,
            "disk {d}: whole-copy scan must coalesce to ≤ 2 vectored reads \
             (data fragments around the parity cluster), got {calls}"
        );
    }
    let t = now.io_totals().since(&before.io_totals());
    assert_eq!(
        t.read_units, blocks as u64,
        "exactly the data units are transferred — no bridged waste"
    );
    assert!(
        t.read_calls <= 2 * store.v() as u64,
        "at most two backend calls per touched disk, got {}",
        t.read_calls
    );
}

/// A sequential whole-copy write (all full stripes) coalesces into one
/// vectored backend call per touched disk, covering data and parity.
#[test]
fn sequential_write_is_one_call_per_disk() {
    let store = ring_store(7, 4, 1);
    let blocks = store.blocks();
    let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 241) as u8).collect();
    let t0 = totals(&store);
    store.write_blocks(0, &data).unwrap();
    let layout_units = store.v() as u64 * store.layout().size() as u64;
    let (r, w, _, wc) = diff(&store, &t0);
    assert_eq!(r, 0, "whole-copy write is all full stripes: zero reads");
    assert_eq!(w, layout_units, "every unit (data + parity) written once");
    assert!(wc <= store.v() as u64, "at most one backend call per touched disk, got {wc}");
    store.verify_parity().unwrap();
}

/// A small XOR write is read-modify-write: 2 unit reads (target,
/// parity) + 2 unit writes, in 2 + 2 backend calls.
#[test]
fn small_xor_write_is_2_plus_2() {
    let store = ring_store(7, 4, 2);
    let data: Vec<u8> = (0..store.blocks() * UNIT).map(|i| (i % 239) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    let t0 = totals(&store);
    store.write_block(1, &[0x11u8; UNIT]).unwrap();
    let (r, w, rc, wc) = diff(&store, &t0);
    assert_eq!((r, w), (2, 2), "XOR RMW is 2 reads + 2 writes");
    assert_eq!((rc, wc), (2, 2), "each a single-unit backend call");
    store.verify_parity().unwrap();
}

/// A small P+Q write is 3 reads (target, P, Q) + 3 writes.
#[test]
fn small_pq_write_is_3_plus_3() {
    let store = pq_store(9, 4, 2);
    let data: Vec<u8> = (0..store.blocks() * UNIT).map(|i| (i % 233) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    let t0 = totals(&store);
    store.write_block(1, &[0x22u8; UNIT]).unwrap();
    let (r, w, _, _) = diff(&store, &t0);
    assert_eq!((r, w), (3, 3), "P+Q RMW is 3 reads + 3 writes");
    store.verify_parity().unwrap();
}

/// K small writes to one stripe under write-back flush as **one**
/// combined parity update: the cached writes themselves do zero
/// backend I/O, and the flush pays `k_data − dirty` reads (the clean
/// units, for the idempotent fresh-parity recompute) plus
/// `dirty + parity` writes — one backend call per touched disk — no
/// matter how many client writes the stripe absorbed. The cache's own
/// counters agree: one insertion, every repeat write absorbed, the
/// whole batch flushed as one stripe.
#[test]
fn write_back_combines_k_writes_into_one_flush() {
    let store = ring_store(7, 4, 2);
    store.set_cache_policy(CachePolicy::WriteBack { max_dirty: 64 }).unwrap();
    let (lo, k_data) = store.stripe_map().stripe_data_range(0);
    assert_eq!(k_data, 3, "k = 4 XOR stripes carry 3 data units");
    let t0 = totals(&store);
    // 50 + 30 writes, all into two data units of stripe 0.
    for i in 0..50u8 {
        store.write_block(lo, &[i; UNIT]).unwrap();
    }
    for i in 0..30u8 {
        store.write_block(lo + 1, &[i; UNIT]).unwrap();
    }
    let (r, w, _, _) = diff(&store, &t0);
    assert_eq!((r, w), (0, 0), "cached writes perform no backend I/O");
    assert_eq!(store.dirty_cache_stripes(), 1);
    store.flush().unwrap();
    let (r, w, rc, wc) = diff(&store, &t0);
    assert_eq!(
        (r, w),
        (1, 3),
        "80 writes flush as one recompute: 1 clean-unit read + (2 data + P) writes"
    );
    assert!(rc <= 1 && wc <= 3, "at most one backend call per touched disk, got {rc}/{wc}");
    assert_eq!(store.dirty_cache_stripes(), 0);
    let cache = store.stats().cache;
    assert_eq!(cache.insertions, 1, "one stripe entry created");
    assert_eq!(cache.absorbed_writes, 78, "80 writes − 2 first-touches all absorbed");
    assert_eq!((cache.flushed_stripes, cache.flushed_units), (1, 2));
    assert_eq!(cache.dirty_stripes, 0);
    store.verify_parity().unwrap();
    // The cached values are the ones that landed.
    let mut out = vec![0u8; UNIT];
    store.read_block(lo, &mut out).unwrap();
    assert_eq!(out, [49u8; UNIT]);
    store.read_block(lo + 1, &mut out).unwrap();
    assert_eq!(out, [29u8; UNIT]);
}

/// A stripe whose every data unit goes dirty in the cache flushes on
/// the zero-read full-stripe path: parity recomputed fresh, exactly
/// `k` unit writes, no reads — even though the writes arrived one
/// block at a time.
#[test]
fn write_back_full_stripe_flush_is_zero_read() {
    let store = pq_store(9, 4, 1);
    store.set_cache_policy(CachePolicy::write_back()).unwrap();
    let (lo, k_data) = store.stripe_map().stripe_data_range(0);
    let t0 = totals(&store);
    for round in 0..4u8 {
        for j in 0..k_data {
            store.write_block(lo + j, &[round ^ j as u8; UNIT]).unwrap();
        }
    }
    store.flush().unwrap();
    let (r, w, _, wc) = diff(&store, &t0);
    assert_eq!(r, 0, "fully dirty stripe flushes with zero reads");
    assert_eq!(w, 4, "k - 2 data + P + Q = k = 4 unit writes");
    assert!(wc <= 4, "one call per touched disk");
    store.verify_parity().unwrap();
}

/// A full-cache drain batches *across* stripes: single-block writes
/// covering a whole copy flush with the same per-disk coalescing as
/// a direct `write_blocks` sweep (≤ 2 vectored calls per disk — the
/// data fragments around each disk's parity cluster), not one call
/// per stripe.
#[test]
fn write_back_batch_flush_coalesces_across_stripes() {
    let store = ring_store(7, 4, 1);
    store.set_cache_policy(CachePolicy::WriteBack { max_dirty: 1024 }).unwrap();
    let blocks = store.blocks();
    let t0 = totals(&store);
    for addr in 0..blocks {
        store.write_block(addr, &[(addr % 251) as u8; UNIT]).unwrap();
    }
    let (r, w, _, _) = diff(&store, &t0);
    assert_eq!((r, w), (0, 0), "all writes absorbed by the cache");
    store.flush().unwrap();
    let (r, w, _, wc) = diff(&store, &t0);
    let layout_units = store.v() as u64 * store.layout().size() as u64;
    assert_eq!(r, 0, "whole-copy drain is all full stripes: zero reads");
    assert_eq!(w, layout_units, "every unit (data + parity) written once");
    assert!(wc <= 2 * store.v() as u64, "batched flush coalesces to ≤ 2 calls per disk, got {wc}");
    store.verify_parity().unwrap();
}

/// A degraded batched read decodes each lost stripe **once**: with two
/// failed disks (P+Q), a stripe holding two requested lost blocks
/// reads its survivors one time, not once per lost block.
#[test]
fn degraded_batch_read_decodes_each_stripe_once() {
    let store = pq_store(9, 4, 1);
    let blocks = store.blocks();
    let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 229) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    store.fail_disk(0).unwrap();
    store.fail_disk(1).unwrap();
    let t0 = totals(&store);
    let mut out = vec![0u8; blocks * UNIT];
    store.read_blocks(0, &mut out).unwrap();
    assert_eq!(out, data, "doubly-degraded batched read returns the written bytes");

    // Per-stripe read budget: a stripe with l requested lost data
    // blocks is decoded at most once (k - l survivor reads, where
    // k = 4 stripe units); its healthy requested blocks ride the
    // coalesced plan. Summed over all stripes the total physical
    // reads can never reach what per-block decoding would issue.
    let per_block_decode_cost: u64 = {
        // Worst-case old path: each lost block decoded separately.
        let k = 4u64;
        let b = store.layout().b() as u64;
        // Upper bound is loose on purpose; the exact count below is
        // the real assertion.
        b * k
    };
    let (r, _, _, _) = diff(&store, &t0);
    assert!(
        r < per_block_decode_cost,
        "batched degraded read ({r} unit reads) must beat per-block decoding"
    );
}

/// Rebuild batching changes how reads are *issued*, never which units
/// are read: per-disk unit counts stay exactly uniform while the call
/// counts collapse by the chunking factor.
#[test]
fn rebuild_batches_reads_without_changing_unit_counts() {
    let store = ring_store(9, 4, 4);
    let blocks = store.blocks();
    let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 227) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    store.fail_disk(2).unwrap();
    let before = store.stats();
    let report = Rebuilder::new(2).chunk_size(16).rebuild(&store, 9).unwrap();
    let expected = 3.0 / 8.0; // (k-1)/(v-1) for v=9, k=4
    assert!(
        (report.mean_read_fraction() - expected).abs() < 1e-9,
        "uniform decode reads (k-1)/(v-1) = {expected} of each survivor, got {}",
        report.mean_read_fraction()
    );
    assert_eq!(report.read_imbalance(), 0.0, "per-disk unit counts perfectly balanced");
    let now = store.stats();
    let units_per_disk = store.backend().units_per_disk() as u64;
    for d in 0..store.v() {
        if d == 2 {
            continue;
        }
        let units = now.disks[d].read_units.saturating_sub(before.disks[d].read_units);
        let calls = disk_read_calls(&now, &before, d);
        assert!(
            calls < units.max(1) || units <= 1,
            "disk {d}: {units} units in {calls} calls — rebuild reads must coalesce"
        );
        assert!(units <= units_per_disk, "never reads a survivor more than fully");
    }
    // Bit-identical recovery, the point of it all.
    let mut out = vec![0u8; blocks * UNIT];
    store.read_blocks(0, &mut out).unwrap();
    assert_eq!(out, data, "rebuilt store returns the original bytes");
}

/// The declustering claim, observed **live**: while a rebuild is
/// running, [`BlockStore::rebuild_progress`] snapshots the per-disk
/// read distribution, and every mid-flight sample's mean read
/// fraction already sits at (k−1)/(v−1) — the paper's promise is a
/// property of the steady state, not just of the final report.
#[test]
fn racing_rebuild_live_read_distribution_matches_declustering() {
    // On a starved single-core host the poller can miss the whole
    // rebuild between two yields; a fresh store retries the race.
    let mut store = ring_store(9, 4, 256);
    let mut samples: Vec<RebuildProgress> = Vec::new();
    for attempt in 0.. {
        let blocks = store.blocks();
        let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 223) as u8).collect();
        store.write_blocks(0, &data).unwrap();
        store.fail_disk(2).unwrap();
        assert!(store.rebuild_progress().is_none(), "no progress before a rebuild registers");

        // Single worker + tiny chunks stretch the rebuild so the
        // polling loop below lands samples strictly mid-flight.
        samples.clear();
        std::thread::scope(|s| {
            let h = s.spawn(|| Rebuilder::new(1).chunk_size(4).rebuild(&store, 9));
            while !h.is_finished() {
                if let Some(p) = store.rebuild_progress() {
                    samples.push(p);
                }
                std::thread::yield_now();
            }
            h.join().expect("rebuild thread").unwrap();
        });
        assert!(store.rebuild_progress().is_none(), "progress clears once the rebuild completes");
        let captured = samples.iter().any(|p| p.units_done >= 64 && p.units_done < p.units_total);
        if captured {
            break;
        }
        assert!(attempt < 10, "no mid-flight snapshot captured in {attempt} races");
        store = ring_store(9, 4, 256);
    }

    let mid: Vec<&RebuildProgress> =
        samples.iter().filter(|p| p.units_done >= 64 && p.units_done < p.units_total).collect();
    let expected = 3.0 / 8.0; // (k-1)/(v-1) for v=9, k=4
    for p in &mid {
        assert_eq!((p.failed_disk, p.spare_disk), (2, 9));
        assert_eq!(p.per_disk_reads.len(), 9, "one read counter per logical disk");
        assert_eq!(p.per_disk_reads[2], 0, "the failed disk is never read");
        // In-flight chunks may have prefetched reads whose units are
        // not yet counted done, so allow a band around the claim.
        assert!(
            (expected - 0.075..=expected + 0.075).contains(&p.mean_read_fraction),
            "live mean read fraction {} strays from (k-1)/(v-1) = {expected} \
             at {}/{} units",
            p.mean_read_fraction,
            p.units_done,
            p.units_total
        );
    }
    // The last mid-flight sample has decoded enough stripes that the
    // per-survivor read counts themselves are near-uniform.
    let last = mid.last().unwrap();
    let survivors: Vec<u64> = (0..9).filter(|&d| d != 2).map(|d| last.per_disk_reads[d]).collect();
    let (min, max) = (survivors.iter().min().unwrap(), survivors.iter().max().unwrap());
    assert!(
        max - min <= 3 * 4 * 2,
        "per-survivor reads stay within two chunks of each other, got {survivors:?}"
    );
    store.verify_parity().unwrap();
}
