//! Fault-injection test harness: seeded-random schedules of writes,
//! disk failures (with the dead medium wiped, so any read that leaks
//! through to it surfaces as corruption rather than luck), degraded
//! reads, and rebuilds onto cycling spares — asserting bit-identical
//! recovery after every step, for single-failure (XOR) and
//! double-failure (P+Q) stores on both backends.
//!
//! Reproducibility: every schedule derives from a seed. The seeds in
//! play are written to `target/fault-injection/<name>.seed` before the
//! schedule runs (CI uploads the file when the job fails), every
//! assertion message carries the seed, and `PDL_FAULT_SEED=<n>`
//! replays exactly one seed.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_sim::{Trace, TraceOp, Workload};
use pdl_store::{Backend, BlockStore, CachePolicy, MemBackend, Rebuilder};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::PathBuf;

const UNIT: usize = 64;
const COPIES: usize = 2;
const STEPS: usize = 300;

/// Where CI picks up the seeds of a failed run.
fn seed_file(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/fault-injection");
    std::fs::create_dir_all(&dir).expect("create seed dir");
    dir.join(format!("{name}.seed"))
}

fn seeds_under_test() -> Vec<u64> {
    if let Ok(s) = std::env::var("PDL_FAULT_SEED") {
        vec![s.parse().expect("PDL_FAULT_SEED must be a u64")]
    } else {
        vec![0xdecaf, 7, 1234567]
    }
}

fn record_seeds(name: &str, seeds: &[u64]) {
    let body: String = seeds.iter().map(|s| format!("PDL_FAULT_SEED={s}\n")).collect();
    std::fs::write(seed_file(name), body).expect("record seeds for CI");
}

/// The harness: drives one store through a random schedule while a
/// shadow image tracks what every block must read back as.
struct Harness<B: Backend> {
    store: BlockStore<B>,
    image: Vec<Vec<u8>>,
    /// Physical disks currently serving no logical disk (spares; a
    /// rebuilt-away disk re-enters this pool).
    free: Vec<usize>,
    rng: StdRng,
    seed: u64,
    name: &'static str,
    step: usize,
}

impl<B: Backend> Harness<B> {
    fn new(store: BlockStore<B>, seed: u64, name: &'static str) -> Self {
        Self::with_cache(store, seed, name, CachePolicy::WriteThrough)
    }

    /// A harness whose store runs the schedule under `cache` — the
    /// write-back variant exercises deferred parity maintenance
    /// against the same fault schedule and the same shadow image.
    fn with_cache(store: BlockStore<B>, seed: u64, name: &'static str, cache: CachePolicy) -> Self {
        store.set_cache_policy(cache).unwrap();
        let blocks = store.blocks();
        let mapped: Vec<usize> = (0..store.v()).map(|d| store.physical_disk(d)).collect();
        let free = (0..store.backend().disks()).filter(|p| !mapped.contains(p)).collect();
        Harness {
            store,
            image: vec![vec![0u8; UNIT]; blocks],
            free,
            rng: StdRng::seed_from_u64(seed),
            seed,
            name,
            step: 0,
        }
    }

    fn ctx(&self) -> String {
        format!(
            "[{} seed {} step {} failed {:?}]",
            self.name,
            self.seed,
            self.step,
            self.store.failed_disks().as_slice()
        )
    }

    fn random_block(&mut self) -> Vec<u8> {
        let mut b = vec![0u8; UNIT];
        self.rng.fill_bytes(&mut b);
        b
    }

    fn do_write(&mut self) {
        let blocks = self.store.blocks();
        if self.rng.random_bool(0.3) {
            let len = self.rng.random_range(1..=6usize).min(blocks);
            let addr = self.rng.random_range(0..=blocks - len);
            let mut data = vec![0u8; len * UNIT];
            self.rng.fill_bytes(&mut data);
            self.store
                .write_blocks(addr, &data)
                .unwrap_or_else(|e| panic!("{} write_blocks: {e}", self.ctx()));
            for (j, chunk) in data.chunks_exact(UNIT).enumerate() {
                self.image[addr + j] = chunk.to_vec();
            }
        } else {
            let addr = self.rng.random_range(0..blocks);
            let data = self.random_block();
            self.store
                .write_block(addr, &data)
                .unwrap_or_else(|e| panic!("{} write_block: {e}", self.ctx()));
            self.image[addr] = data;
        }
    }

    fn do_read(&mut self) {
        let addr = self.rng.random_range(0..self.store.blocks());
        let mut out = vec![0u8; UNIT];
        self.store
            .read_block(addr, &mut out)
            .unwrap_or_else(|e| panic!("{} read_block({addr}): {e}", self.ctx()));
        assert_eq!(out, self.image[addr], "{} block {addr} corrupted", self.ctx());
    }

    fn do_fail(&mut self) {
        if self.store.failed_disks().len() >= self.store.fault_tolerance() {
            return;
        }
        let disk = self.rng.random_range(0..self.store.v());
        if self.store.failed_disks().contains(disk) {
            return;
        }
        // Drain the write cache before killing the medium (a deferred
        // write still assumes the disk holds its pre-write bytes),
        // then wipe: from here on, every correct byte of this disk
        // must come from the erasure decode.
        if self.store.cache_policy().is_write_back() {
            self.store.flush().unwrap_or_else(|e| panic!("{} pre-fail flush: {e}", self.ctx()));
        }
        let phys = self.store.physical_disk(disk);
        self.store.backend().wipe_disk(phys).unwrap();
        self.store.fail_disk(disk).unwrap_or_else(|e| panic!("{} fail_disk: {e}", self.ctx()));
    }

    fn do_rebuild(&mut self) {
        if !self.store.is_degraded() {
            return;
        }
        let spare = self.free.pop().expect("spare pool never empties: rebuilds recycle disks");
        let failed = self.store.failed_disk().unwrap();
        let freed = self.store.physical_disk(failed);
        let report = Rebuilder::new(2)
            .rebuild(&self.store, spare)
            .unwrap_or_else(|e| panic!("{} rebuild onto {spare}: {e}", self.ctx()));
        assert_eq!(report.failed_disk, failed);
        // The replaced physical disk is stale but rewritable: it may
        // serve as a spare for a later failure.
        self.free.push(freed);
    }

    fn check_all(&mut self) {
        let mut out = vec![0u8; UNIT];
        for addr in 0..self.store.blocks() {
            self.store
                .read_block(addr, &mut out)
                .unwrap_or_else(|e| panic!("{} full check read({addr}): {e}", self.ctx()));
            assert_eq!(out, self.image[addr], "{} full check: block {addr} differs", self.ctx());
        }
        if !self.store.is_degraded() {
            self.store.verify_parity().unwrap_or_else(|e| panic!("{} verify: {e}", self.ctx()));
        }
    }

    /// One seeded schedule: STEPS weighted random operations, a full
    /// bit-identical check every 50 steps and at the end, then drain
    /// the failure set and verify parity on the healthy array.
    fn run(mut self) {
        for step in 0..STEPS {
            self.step = step;
            match self.rng.random_range(0..100u32) {
                0..=49 => self.do_write(),
                50..=79 => self.do_read(),
                80..=89 => self.do_fail(),
                _ => self.do_rebuild(),
            }
            if step % 50 == 49 {
                self.check_all();
            }
        }
        while self.store.is_degraded() {
            self.do_rebuild();
        }
        self.check_all();
        assert!(self.store.verify_parity().is_ok(), "{} final verify", self.ctx());
    }
}

fn xor_store_mem() -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let backend = MemBackend::new(7 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

fn pq_store_mem() -> BlockStore<MemBackend> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let backend = MemBackend::new(9 + 3, COPIES * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, backend).unwrap()
}

#[test]
fn fault_schedule_xor_mem() {
    let seeds = seeds_under_test();
    record_seeds("xor_mem", &seeds);
    for seed in seeds {
        Harness::new(xor_store_mem(), seed, "xor_mem").run();
    }
}

#[test]
fn fault_schedule_pq_mem() {
    let seeds = seeds_under_test();
    record_seeds("pq_mem", &seeds);
    for seed in seeds {
        Harness::new(pq_store_mem(), seed, "pq_mem").run();
    }
}

/// The XOR schedule with write-back combining on (a small budget
/// keeps flush-by-eviction racing the fault events).
#[test]
fn fault_schedule_xor_writeback_mem() {
    let seeds = seeds_under_test();
    record_seeds("xor_wb_mem", &seeds);
    for seed in seeds {
        Harness::with_cache(
            xor_store_mem(),
            seed,
            "xor_wb_mem",
            CachePolicy::WriteBack { max_dirty: 8 },
        )
        .run();
    }
}

/// The P+Q double-failure schedule under write-back, file-backed.
#[test]
fn fault_schedule_pq_writeback_file() {
    let seeds = seeds_under_test();
    record_seeds("pq_wb_file", &seeds);
    for seed in seeds {
        let dir =
            std::env::temp_dir().join(format!("pdl-fault-pqwb-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
        let store = pdl_store::create_file_store_pq(&dir, dp, UNIT, COPIES, 3).unwrap();
        Harness::with_cache(store, seed, "pq_wb_file", CachePolicy::WriteBack { max_dirty: 8 })
            .run();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn fault_schedule_pq_file() {
    let seeds = seeds_under_test();
    record_seeds("pq_file", &seeds);
    for seed in seeds {
        let dir = std::env::temp_dir().join(format!("pdl-fault-pq-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
        let store = pdl_store::create_file_store_pq(&dir, dp, UNIT, COPIES, 3).unwrap();
        Harness::new(store, seed, "pq_file").run();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn fault_schedule_xor_file() {
    let seeds = seeds_under_test();
    record_seeds("xor_file", &seeds);
    for seed in seeds {
        let dir = std::env::temp_dir().join(format!("pdl-fault-xor-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let layout = RingLayout::for_v_k(7, 3).layout().clone();
        let store = pdl_store::create_file_store(&dir, layout, UNIT, COPIES, 2).unwrap();
        Harness::new(store, seed, "xor_file").run();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The same fault scenarios expressed as a *trace*: scripted
/// fail/rebuild events ride along with generated block traffic and
/// replay deterministically against real bytes.
#[test]
fn fault_events_replay_from_trace_mem() {
    let store = pq_store_mem();
    let blocks = store.blocks();
    let workload = Workload { request_units: (1, 4), read_fraction: 0.4, ..Workload::default() };
    let trace = Trace::from_workload(&workload, blocks, 120, 5)
        .then(TraceOp::Fail { disk: 1 })
        .then(TraceOp::Fail { disk: 4 });
    let mut tail = Trace::from_workload(&workload, blocks, 120, 6);
    let mut ops = trace.ops;
    ops.append(&mut tail.ops);
    let trace = Trace { ops }
        .then(TraceOp::Rebuild { spare: 9 })
        .then(TraceOp::Rebuild { spare: 10 })
        .then(TraceOp::Fail { disk: 0 })
        .then(TraceOp::Restore { disk: 0 });
    let stats = store.replay(&trace).unwrap();
    assert_eq!(stats.reads + stats.writes, 240);
    assert_eq!(stats.disks_failed, 3);
    assert_eq!(stats.rebuilds, 2);
    assert_eq!(stats.disks_restored, 1);
    assert!(!store.is_degraded());
    store.verify_parity().unwrap();

    // Determinism: the same trace on a fresh store produces the same
    // stats and identical content.
    let other = pq_store_mem();
    let stats2 = other.replay(&trace).unwrap();
    assert_eq!(stats, stats2);
    let mut a = vec![0u8; UNIT];
    let mut b = vec![0u8; UNIT];
    for addr in 0..blocks {
        store.read_block(addr, &mut a).unwrap();
        other.read_block(addr, &mut b).unwrap();
        assert_eq!(a, b, "replays diverge at block {addr}");
    }
}
