//! Chaos battery: the multi-threaded stress harness driven over a
//! [`FaultyBackend`] whose seeded schedule injects transient errors,
//! stalling calls, and (under double parity) silent corruption —
//! while a rebuild races the traffic on a degraded array. The
//! transient-only legs assert the harness's own bit-exact final sweep
//! and parity check; the corrupting legs run pure traffic and verify
//! after quiescing (armed schedules corrupt *writes*, so in-run
//! verification would rot the very units it just repaired) — either
//! way the retry, read-repair, and checksum layers must leave the
//! array provably clean with the medium actively misbehaving.
//!
//! The scrub-stress leg additionally races a background scrub pass
//! against live traffic *and* a thread planting latent corruption
//! mid-flight, proving scrubbing, repair, and client I/O interleave
//! safely.
//!
//! Reproducibility mirrors `fault_injection.rs`: seeds are written to
//! `target/chaos/<name>.seed` before each leg (CI uploads them on
//! failure) and `PDL_CHAOS_SEED=<n>` replays exactly one seed.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    stress, Backend, BlockStore, CachePolicy, FaultConfig, FaultyBackend, FileBackend, MemBackend,
    RebuildMode, ScrubConfig, StressConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

const UNIT: usize = 64;
const COPIES: usize = 2;

fn seed_file(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos");
    std::fs::create_dir_all(&dir).expect("create seed dir");
    dir.join(format!("{name}.seed"))
}

fn seeds_under_test() -> Vec<u64> {
    if let Ok(s) = std::env::var("PDL_CHAOS_SEED") {
        vec![s.parse().expect("PDL_CHAOS_SEED must be a u64")]
    } else {
        vec![0xc4a05, 99]
    }
}

fn record_seeds(name: &str, seeds: &[u64]) {
    let body: String = seeds.iter().map(|s| format!("PDL_CHAOS_SEED={s}\n")).collect();
    std::fs::write(seed_file(name), body).expect("record seeds for CI");
}

/// Transients and stalls only — safe under any parity scheme even
/// with a concurrent whole-disk failure.
fn noisy(seed: u64) -> FaultConfig {
    FaultConfig { transient_rate: 0.003, slow_rate: 0.002, slow_us: 30, ..FaultConfig::quiet(seed) }
}

/// Transients, stalls, *and* silent corruption — only a double-parity
/// store can take this together with a failed disk (each repair may
/// need two erasures decoded).
fn hostile(seed: u64) -> FaultConfig {
    FaultConfig { corrupt_rate: 0.0008, ..noisy(seed) }
}

fn xor_faulty_mem(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let mem = MemBackend::new(7 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, FaultyBackend::new(mem, cfg)).unwrap()
}

fn pq_faulty_mem(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let mem = MemBackend::new(9 + 2, COPIES * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, FaultyBackend::new(mem, cfg)).unwrap()
}

fn xor_faulty_file(dir: &PathBuf, cfg: FaultConfig) -> BlockStore<FaultyBackend<FileBackend>> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let fb = FileBackend::create(dir, 7 + 2, COPIES * layout.size(), UNIT).unwrap();
    BlockStore::new(layout, FaultyBackend::new(fb, cfg)).unwrap()
}

fn pq_faulty_file(dir: &PathBuf, cfg: FaultConfig) -> BlockStore<FaultyBackend<FileBackend>> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let fb = FileBackend::create(dir, 9 + 2, COPIES * dp.layout().size(), UNIT).unwrap();
    BlockStore::new_pq(dp, FaultyBackend::new(fb, cfg)).unwrap()
}

fn stress_cfg(seed: u64, spare: usize) -> StressConfig {
    StressConfig {
        threads: 3,
        ops_per_thread: 250,
        seed,
        fail_disk: Some(2),
        rebuild: RebuildMode::Racing { spare },
        ..StressConfig::default()
    }
}

#[test]
fn chaos_xor_mem() {
    let seeds = seeds_under_test();
    record_seeds("xor_mem", &seeds);
    for seed in seeds {
        let store = xor_faulty_mem(noisy(seed));
        let report = stress::run(&store, &stress_cfg(seed, 7)).unwrap();
        assert!(report.reads + report.writes > 0, "[chaos seed {seed}] traffic ran");
        assert!(
            store.backend().injected_transients() > 0,
            "[chaos seed {seed}] schedule must actually fire"
        );
    }
}

/// Quiesce an array whose backend has been planting silent rot, then
/// prove it clean: disarm the schedule, flush, run one catch-up scrub
/// (repairs anything injected after the last read of each unit — the
/// schedule corrupts *writes*, so even repair writes could be hit
/// while it was armed), then assert the next pass finds nothing and
/// the raw parity invariants hold.
fn quiesce_and_prove_clean<B: Backend>(store: &BlockStore<FaultyBackend<B>>, seed: u64) {
    store.backend().set_armed(false);
    store.flush().unwrap();
    store.scrub(&ScrubConfig::default()).unwrap();
    let clean = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!(
        (clean.checksum_repairs, clean.parity_repairs),
        (0, 0),
        "[chaos seed {seed}] no latent errors survive quiescing"
    );
    store.verify_parity().unwrap();
}

#[test]
fn chaos_pq_mem() {
    let seeds = seeds_under_test();
    record_seeds("pq_mem", &seeds);
    for seed in seeds {
        let store = pq_faulty_mem(hostile(seed));
        // Silent corruption lands on *writes*, so the harness's own
        // armed-schedule verification could rot the very units it just
        // repaired: run pure traffic and verify after quiescing.
        let mut cfg = stress_cfg(seed, 9);
        cfg.verify_reads = false;
        let report = stress::run(&store, &cfg).unwrap();
        assert!(report.reads + report.writes > 0, "[chaos seed {seed}] traffic ran");
        quiesce_and_prove_clean(&store, seed);
    }
}

#[test]
fn chaos_xor_file() {
    let seeds = seeds_under_test();
    record_seeds("xor_file", &seeds);
    for seed in seeds {
        let dir = std::env::temp_dir().join(format!("pdl-chaos-xor-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = xor_faulty_file(&dir, noisy(seed));
        let mut cfg = stress_cfg(seed, 7);
        cfg.ops_per_thread = 150;
        stress::run(&store, &cfg).unwrap();
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn chaos_pq_file() {
    let seeds = seeds_under_test();
    record_seeds("pq_file", &seeds);
    for seed in seeds {
        let dir = std::env::temp_dir().join(format!("pdl-chaos-pq-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = pq_faulty_file(&dir, hostile(seed));
        let mut cfg = stress_cfg(seed, 9);
        cfg.ops_per_thread = 150;
        // See chaos_pq_mem: armed corruption + in-run verification
        // don't mix; verify after quiescing instead.
        cfg.verify_reads = false;
        stress::run(&store, &cfg).unwrap();
        quiesce_and_prove_clean(&store, seed);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A background scrub races live traffic while a third thread keeps
/// rotting units of one disk under everyone's feet: every corruption
/// is repaired either by a client read (read-repair), overwritten by
/// a client write, or caught by a scrub pass — the harness's final
/// sweep is bit-exact, and after quiescing, one catch-up scrub later
/// the array proves completely clean.
#[test]
fn chaos_scrub_races_live_traffic_and_live_rot() {
    let seeds = seeds_under_test();
    record_seeds("scrub_stress", &seeds);
    for seed in seeds {
        let store = Arc::new(xor_faulty_mem(noisy(seed)));
        let handle = store
            .start_scrub(ScrubConfig { stripes_per_step: 4, sleep_us: 100, checkpoint_stripes: 0 })
            .unwrap();

        // The rot thread: one unit of one disk at a time (a disk
        // appears at most once per stripe, so single-parity decode
        // always suffices), spaced so repairs interleave with new rot.
        let rot_store = store.clone();
        let rot = std::thread::spawn(move || {
            let pd = rot_store.physical_disk(3);
            for off in (0..rot_store.backend().units_per_disk()).step_by(3) {
                rot_store.backend().corrupt_unit(pd, off).unwrap();
                std::thread::sleep(std::time::Duration::from_micros(400));
            }
        });

        let cfg = StressConfig {
            threads: 3,
            ops_per_thread: 250,
            seed,
            rebuild: RebuildMode::None,
            cache: CachePolicy::WriteBack { max_dirty: 16 },
            // The rot thread may still be injecting while the harness
            // would run its final sweep — verify after quiescing.
            verify_reads: false,
            ..StressConfig::default()
        };
        let report = stress::run(&store, &cfg).unwrap();
        assert!(report.reads + report.writes > 0, "[chaos seed {seed}] traffic ran");
        rot.join().unwrap();
        let scrub = handle.join().unwrap();
        assert!(scrub.completed, "[chaos seed {seed}] scrub pass finished under traffic");
        assert!(
            !store.backend().corruptions().is_empty(),
            "[chaos seed {seed}] the rot thread must actually have injected"
        );

        // One catch-up pass repairs any rot injected behind the racing
        // pass's cursor; the next pass must then find nothing.
        quiesce_and_prove_clean(&store, seed);
    }
}
