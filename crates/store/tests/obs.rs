//! Observability end-to-end tests: the metrics registry, event
//! tracing, degraded-window accounting, and `stats()` snapshots, all
//! observed through the public store API the way a monitoring agent
//! would.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    stress, Backend, BlockStore, CachePolicy, Event, EventSink, MemBackend, OpKind, RebuildMode,
    Rebuilder, StatsSnapshot, StoreError, StressConfig, TraceLog,
};

const UNIT: usize = 64;

fn ring_store(v: usize, k: usize, copies: usize) -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(v, k).layout().clone();
    let backend = MemBackend::new(v + 1, copies * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

fn pq_store(v: usize, k: usize, copies: usize) -> BlockStore<MemBackend> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap();
    let backend = MemBackend::new(v + 2, copies * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, backend).unwrap()
}

fn fill(store: &BlockStore<MemBackend>) -> Vec<u8> {
    let data: Vec<u8> = (0..store.blocks() * UNIT).map(|i| (i % 251) as u8).collect();
    store.write_blocks(0, &data).unwrap();
    data
}

/// The registry counts every public op by kind, with unit totals.
#[test]
fn metrics_registry_counts_ops_by_kind() {
    let store = ring_store(7, 3, 2);
    fill(&store);
    let mut out = vec![0u8; UNIT];
    for addr in 0..10 {
        store.read_block(addr, &mut out).unwrap();
    }
    store.write_block(0, &[7u8; UNIT]).unwrap();
    let s = store.stats();
    let read = s.op(OpKind::Read).unwrap();
    assert_eq!(read.ops, 10, "10 single-block reads counted");
    assert_eq!(read.units, 10, "one unit per read");
    let write = s.op(OpKind::Write).unwrap();
    // The batched fill is one Write op; the single write another.
    assert_eq!(write.ops, 2);
    assert_eq!(write.units as usize, store.blocks() + 1);
    assert_eq!(s.op(OpKind::DegradedRead).unwrap().ops, 0, "healthy run");
    assert!(s.rebuild.is_none());
    // The per-disk counters in the same snapshot agree with the
    // backend's own view.
    let io = s.io_totals();
    assert!(io.write_units > 0 && io.write_calls > 0);
}

/// Disabling the registry freezes every counter; re-enabling resumes.
#[test]
fn metrics_disable_stops_counting() {
    let store = ring_store(7, 3, 1);
    fill(&store);
    let before = store.stats().op(OpKind::Read).unwrap().ops;
    store.metrics().set_enabled(false);
    let mut out = vec![0u8; UNIT];
    store.read_block(0, &mut out).unwrap();
    assert_eq!(store.stats().op(OpKind::Read).unwrap().ops, before, "disabled: not counted");
    store.metrics().set_enabled(true);
    store.read_block(0, &mut out).unwrap();
    assert_eq!(store.stats().op(OpKind::Read).unwrap().ops, before + 1);
}

/// Degraded-window accounting: wall-clock and op counts accumulate
/// against the *exact* erasure level, the open window is visible
/// live, and windows close when the array heals.
#[test]
fn degraded_windows_split_one_vs_two_erasures() {
    let store = pq_store(9, 4, 2);
    fill(&store);
    let mut out = vec![0u8; UNIT];

    let s0 = store.stats();
    assert_eq!((s0.degraded.one.windows, s0.degraded.two.windows), (0, 0));

    store.fail_disk(0).unwrap();
    for addr in 0..8 {
        store.read_block(addr, &mut out).unwrap();
    }
    // Still degraded: the open window is included in the snapshot.
    let s1 = store.stats();
    assert_eq!(s1.degraded.one.windows, 1, "one-erasure window opened");
    assert_eq!(s1.degraded.one.ops, 8, "the degraded reads are on the window's op clock");
    assert!(s1.degraded.one.wall_ns > 0, "open window accrues wall time live");
    assert_eq!(s1.degraded.two.windows, 0);

    store.fail_disk(1).unwrap();
    for addr in 0..4 {
        store.read_block(addr, &mut out).unwrap();
    }
    store.restore_disk(1).unwrap();
    store.restore_disk(0).unwrap();

    let s2 = store.stats();
    assert_eq!(s2.degraded.one.windows, 1, "returning 2→1 resumes the same logical window");
    assert_eq!(s2.degraded.two.windows, 1, "the two-erasure escalation is its own window");
    assert_eq!(s2.degraded.two.ops, 4, "ops while doubly degraded accrue to `two`");
    assert_eq!(s2.degraded.one.ops, 8, "ops while singly degraded accrue to `one`");
    assert!(s2.degraded.one.wall_ns > 0 && s2.degraded.two.wall_ns > 0);

    // Healthy again: the totals are closed and stable.
    for addr in 0..16 {
        store.read_block(addr, &mut out).unwrap();
    }
    let s3 = store.stats();
    assert_eq!(s3.degraded.one.ops, s2.degraded.one.ops, "healthy ops don't leak into windows");
}

/// A rebuild closes the degraded window and its chunked I/O shows up
/// as `rebuild_read` / `spare_write` op kinds with exact unit totals.
#[test]
fn rebuild_ops_and_window_close() {
    let store = ring_store(9, 4, 4);
    let data = fill(&store);
    store.fail_disk(2).unwrap();
    Rebuilder::new(2).rebuild(&store, 9).unwrap();

    let s = store.stats();
    let per_disk = store.backend().units_per_disk() as u64;
    assert_eq!(s.op(OpKind::SpareWrite).unwrap().units, per_disk, "every unit landed once");
    assert_eq!(
        s.op(OpKind::RebuildRead).unwrap().units,
        3 * per_disk,
        "k-1 = 3 survivor reads per rebuilt unit"
    );
    assert_eq!(s.degraded.one.windows, 1);
    assert!(s.rebuild.is_none(), "no live rebuild after completion");

    let mut out = vec![0u8; store.blocks() * UNIT];
    store.read_blocks(0, &mut out).unwrap();
    assert_eq!(out, data);
}

/// The bundled ring-buffer sink sees the whole failure/rebuild
/// lifecycle as structured events, op spans included — and stops
/// seeing anything once uninstalled.
#[test]
fn trace_log_captures_lifecycle_events() {
    let store = ring_store(7, 3, 2);
    fill(&store);
    let log = Arc::new(TraceLog::with_capacity(4096));
    store.set_event_sink(Some(log.clone()));

    store.fail_disk(1).unwrap();
    store.write_block(0, &[9u8; UNIT]).unwrap();
    Rebuilder::new(1).rebuild(&store, 7).unwrap();

    let events = log.events();
    assert!(events.iter().any(|e| matches!(e, Event::DiskFailed { disk: 1, .. })));
    assert!(
        events.iter().any(|e| matches!(e, Event::RebuildBegan { disk: 1, spare: 7, .. })),
        "rebuild registration traced"
    );
    assert!(events.iter().any(|e| matches!(e, Event::RebuildCompleted { disk: 1, .. })));
    let span_open = events
        .iter()
        .any(|e| matches!(e, Event::OpBegin { kind, .. } if *kind == OpKind::DegradedWrite));
    let span_close = events
        .iter()
        .any(|e| matches!(e, Event::OpEnd { kind, .. } if *kind == OpKind::DegradedWrite));
    assert!(span_open && span_close, "degraded write op span traced open and close");

    store.set_event_sink(None);
    let seen = log.recorded();
    store.write_block(1, &[3u8; UNIT]).unwrap();
    assert_eq!(log.recorded(), seen, "uninstalled sink receives nothing");
}

/// A custom [`EventSink`] hears write-back flush batches with their
/// stripe and dirty-unit payloads, matching the cache counters.
#[test]
fn custom_sink_hears_cache_flush_batches() {
    #[derive(Default)]
    struct FlushCounter {
        batches: AtomicU64,
        dirty_units: AtomicU64,
    }
    impl EventSink for FlushCounter {
        fn record(&self, ev: &Event) {
            if let Event::CacheFlush { dirty_units, .. } = ev {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.dirty_units.fetch_add(*dirty_units as u64, Ordering::Relaxed);
            }
        }
    }

    let store = ring_store(7, 3, 2);
    store.set_cache_policy(CachePolicy::write_back()).unwrap();
    let sink = Arc::new(FlushCounter::default());
    store.set_event_sink(Some(sink.clone()));
    for addr in 0..6 {
        store.write_block(addr, &[addr as u8; UNIT]).unwrap();
    }
    store.flush().unwrap();
    assert!(sink.batches.load(Ordering::Relaxed) >= 1, "flush batch event emitted");
    let s = store.stats();
    assert_eq!(
        sink.dirty_units.load(Ordering::Relaxed),
        s.cache.flushed_units,
        "event payloads agree with the cache counters"
    );
    assert!(s.op(OpKind::CacheFlush).unwrap().ops >= 1, "flush batches are an op kind too");
}

/// `stats()` round-trips through JSON bit-exactly — the contract the
/// CI artifacts and the bench gate's `--require-stat` rely on.
#[test]
fn stats_snapshot_survives_json() {
    let store = pq_store(9, 4, 1);
    fill(&store);
    store.fail_disk(3).unwrap();
    let mut out = vec![0u8; UNIT];
    store.read_block(0, &mut out).unwrap();
    let s = store.stats();
    let json = serde_json::to_string(&s).unwrap();
    let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back.io_totals(), s.io_totals());
    assert_eq!(back.epoch, s.epoch);
    assert_eq!(back.degraded.one.windows, s.degraded.one.windows);
    assert_eq!(back.op(OpKind::Read).unwrap().ops, s.op(OpKind::Read).unwrap().ops);
    for (d, disk) in back.disks.iter().enumerate() {
        assert_eq!(disk.disk, d);
    }
    // The human renderer covers the same snapshot without panicking
    // and names the op kinds.
    let text = pdl_store::render_stats(&s);
    assert!(text.contains("ops (kind") && text.contains("degraded: one-erasure 1 window"));
}

/// `verify_parity` names the exact stripe, copy, and parity invariant
/// it found violated.
#[test]
fn parity_mismatch_reports_stripe_context() {
    let store = ring_store(7, 3, 1);
    fill(&store);
    store.verify_parity().unwrap();
    // Corrupt the medium behind the store's back (no fail_disk): the
    // scan must localize the damage, not just report "bad".
    store.backend().wipe_disk(store.physical_disk(0)).unwrap();
    match store.verify_parity() {
        Err(StoreError::ParityMismatch { stripe, copy, parity }) => {
            assert_eq!(copy, 0, "first copy scanned first");
            assert!(parity.contains('P'), "XOR stores verify the P invariant, got {parity}");
            let msg = StoreError::ParityMismatch { stripe, copy, parity }.to_string();
            assert!(msg.contains("parity invariant") && msg.contains(&stripe.to_string()));
        }
        other => panic!("expected ParityMismatch, got {other:?}"),
    }
}

/// The stress harness carries a stats snapshot describing its own
/// workload and (racing mode) live rebuild-progress samples, and its
/// `stats.json` payload parses back.
#[test]
fn stress_report_carries_stats_snapshot() {
    let store = ring_store(9, 4, 64);
    let cfg = StressConfig {
        threads: 3,
        ops_per_thread: 300,
        fail_disk: Some(2),
        rebuild: RebuildMode::Racing { spare: 9 },
        ..StressConfig::default()
    };
    let report = stress::run(&store, &cfg).unwrap();
    let s = &report.stats;
    assert!(s.op(OpKind::SpareWrite).unwrap().units > 0, "rebuild traffic in the snapshot");
    assert_eq!(s.degraded.one.windows, 1, "the injected failure is one degraded window");
    assert!(s.degraded.one.ops > 0, "client ops ran inside the window");
    for p in &report.rebuild_progress {
        assert_eq!(p.failed_disk, 2);
        assert!(p.units_done <= p.units_total);
    }
    let back: StatsSnapshot = serde_json::from_str(&report.stats_json()).unwrap();
    assert_eq!(back.io_totals(), s.io_totals());
}
