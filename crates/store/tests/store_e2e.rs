//! End-to-end proof on real bytes: write random data through the
//! store, fail a disk, verify every logical block is still readable
//! (degraded) and bit-identical after rebuild — for both backends and
//! for RAID5 vs ring-declustered layouts — and check that a
//! ring-declustered rebuild balances its per-surviving-disk reads
//! within 1% at the predicted (k−1)/(v−1) fraction.

use pdl_core::{raid5_layout, DoubleParityLayout, Layout, RingLayout};
use pdl_sim::{Trace, Workload};
use pdl_store::{Backend, BlockStore, FileBackend, MemBackend, Rebuilder, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNIT: usize = 128;
const COPIES: usize = 2;
const SPARES: usize = 1;

fn random_image(blocks: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks).map(|_| (0..UNIT).map(|_| rng.random_range(0u64..256) as u8).collect()).collect()
}

fn fill_store<B: Backend>(store: &mut BlockStore<B>, image: &[Vec<u8>]) {
    for (addr, block) in image.iter().enumerate() {
        store.write_block(addr, block).unwrap();
    }
}

fn assert_image_matches<B: Backend>(store: &BlockStore<B>, image: &[Vec<u8>], what: &str) {
    let mut out = vec![0u8; UNIT];
    for (addr, block) in image.iter().enumerate() {
        store.read_block(addr, &mut out).unwrap();
        assert_eq!(&out, block, "{what}: block {addr} differs");
    }
}

/// The full kill-a-disk-and-recover cycle on any store.
fn exercise<B: Backend>(mut store: BlockStore<B>, spare: usize, seed: u64) {
    let blocks = store.blocks();
    let image = random_image(blocks, seed);
    fill_store(&mut store, &image);
    store.verify_parity().unwrap();

    // Fail every candidate disk in turn? One representative failure per
    // run keeps the test fast; callers vary `seed` and layouts.
    let failed = (seed % store.v() as u64) as usize;
    store.fail_disk(failed).unwrap();
    assert!(store.is_degraded());

    // Every logical block remains readable in degraded mode.
    assert_image_matches(&store, &image, "degraded");

    // Degraded writes keep data recoverable: overwrite a slice of
    // blocks while the disk is down.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let mut image = image;
    for _ in 0..blocks / 4 {
        let addr = rng.random_range(0..blocks);
        let fresh: Vec<u8> = (0..UNIT).map(|_| rng.random_range(0u64..256) as u8).collect();
        store.write_block(addr, &fresh).unwrap();
        image[addr] = fresh;
    }
    assert_image_matches(&store, &image, "degraded after writes");

    // Rebuild onto the spare: bit-identical content, healthy parity.
    let report = Rebuilder::new(4).rebuild(&store, spare).unwrap();
    assert!(!store.is_degraded());
    assert_eq!(report.failed_disk, failed);
    assert_eq!(report.units_rebuilt, store.backend().units_per_disk());
    assert_image_matches(&store, &image, "after rebuild");
    store.verify_parity().unwrap();
}

fn ring_layout(v: usize, k: usize) -> Layout {
    RingLayout::for_v_k(v, k).layout().clone()
}

#[test]
fn mem_ring_declustered_end_to_end() {
    for seed in [1u64, 5, 9] {
        let layout = ring_layout(7, 3);
        let backend = MemBackend::new(7 + SPARES, COPIES * layout.size(), UNIT);
        let store = BlockStore::new(layout, backend).unwrap();
        exercise(store, 7, seed);
    }
}

#[test]
fn mem_raid5_end_to_end() {
    for seed in [2u64, 6] {
        let layout = raid5_layout(6, 12);
        let backend = MemBackend::new(6 + SPARES, COPIES * layout.size(), UNIT);
        let store = BlockStore::new(layout, backend).unwrap();
        exercise(store, 6, seed);
    }
}

#[test]
fn file_ring_declustered_end_to_end() {
    let dir = std::env::temp_dir().join(format!("pdl-e2e-ring-{}", std::process::id()));
    let layout = ring_layout(5, 3);
    let backend = FileBackend::create(&dir, 5 + SPARES, COPIES * layout.size(), UNIT).unwrap();
    let store = BlockStore::new(layout, backend).unwrap();
    exercise(store, 5, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Rebuild redirects must survive a close/reopen: data written while
/// degraded lives on the spare, and a reopened store has to read it
/// from there, not from the stale failed disk.
#[test]
fn file_store_reopen_after_rebuild_reads_spare() {
    let dir = std::env::temp_dir().join(format!("pdl-e2e-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = ring_layout(7, 3);
    let mut store = pdl_store::create_file_store(&dir, layout, UNIT, COPIES, SPARES).unwrap();
    let blocks = store.blocks();
    let mut image = random_image(blocks, 21);
    fill_store(&mut store, &image);
    store.fail_disk(4).unwrap();
    // Overwrite every block while degraded: units on the failed disk
    // now exist only as parity until the rebuild materializes them.
    for (addr, block) in random_image(blocks, 22).into_iter().enumerate() {
        store.write_block(addr, &block).unwrap();
        image[addr] = block;
    }
    Rebuilder::new(2).rebuild(&store, 7).unwrap();
    drop(store); // simulate process exit

    let store = pdl_store::open_file_store(&dir).unwrap();
    assert_eq!(store.physical_disk(4), 7, "mapping must be persisted");
    assert_image_matches(&store, &image, "reopened after rebuild");
    store.verify_parity().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_raid5_end_to_end() {
    let dir = std::env::temp_dir().join(format!("pdl-e2e-raid5-{}", std::process::id()));
    let layout = raid5_layout(5, 10);
    let backend = FileBackend::create(&dir, 5 + SPARES, COPIES * layout.size(), UNIT).unwrap();
    let store = BlockStore::new(layout, backend).unwrap();
    exercise(store, 5, 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The paper's headline claim measured on real reconstruction traffic:
/// a declustered rebuild reads the same number of units from every
/// surviving disk (within 1%), and that number is (k−1)/(v−1) of a
/// disk; RAID5 reads 100%.
#[test]
fn rebuild_load_matches_declustering_claim() {
    // Ring-declustered: v = 9, k = 4 → fraction 3/8 = 0.375.
    let layout = ring_layout(9, 4);
    let size = layout.size();
    let backend = MemBackend::new(10, COPIES * size, UNIT);
    let mut store = BlockStore::new(layout, backend).unwrap();
    let image = random_image(store.blocks(), 11);
    fill_store(&mut store, &image);
    store.fail_disk(2).unwrap();
    store.reset_counters();
    let report = Rebuilder::new(4).rebuild(&store, 9).unwrap();

    assert!(
        report.read_imbalance() <= 0.01,
        "surviving-disk reads not balanced within 1%: {:?}",
        report.per_disk_reads
    );
    let fraction = report.mean_read_fraction();
    assert!(
        (fraction - 3.0 / 8.0).abs() < 1e-9,
        "expected (k-1)/(v-1) = 0.375, measured {fraction}"
    );
    assert_image_matches(&store, &image, "after measured rebuild");

    // RAID5 baseline: every surviving disk is read in full.
    let layout = raid5_layout(6, 12);
    let backend = MemBackend::new(7, COPIES * layout.size(), UNIT);
    let mut store = BlockStore::new(layout, backend).unwrap();
    let image = random_image(store.blocks(), 12);
    fill_store(&mut store, &image);
    store.fail_disk(0).unwrap();
    store.reset_counters();
    let report = Rebuilder::new(4).rebuild(&store, 6).unwrap();
    assert!((report.mean_read_fraction() - 1.0).abs() < 1e-9);
    assert_eq!(report.read_imbalance(), 0.0);
}

/// The full-stripe write fast path computes parity without reading:
/// stripe-aligned writes issue zero backend reads.
#[test]
fn full_stripe_writes_skip_reads() {
    let layout = ring_layout(7, 4); // k-1 = 3 data units per stripe
    let per_copy_data = {
        let m = pdl_core::AddressMapper::new(&layout);
        m.data_units_per_copy()
    };
    let backend = MemBackend::new(7, layout.size(), UNIT);
    let store = BlockStore::new(layout, backend).unwrap();
    // One whole copy, written stripe-aligned.
    let data = vec![0x77u8; per_copy_data * UNIT];
    store.write_blocks(0, &data).unwrap();
    let reads: u64 = (0..store.v()).map(|d| store.backend().read_count(d)).sum();
    assert_eq!(reads, 0, "full-stripe writes must not read");
    store.verify_parity().unwrap();

    // An unaligned small write does RMW (2 reads).
    store.reset_counters();
    store.write_block(1, &[0x11u8; UNIT]).unwrap();
    let reads: u64 = (0..store.v()).map(|d| store.backend().read_count(d)).sum();
    assert_eq!(reads, 2, "small write is read-modify-write");
    store.verify_parity().unwrap();
}

/// Simulator-style workloads replay against real bytes, healthy and
/// degraded, without ever corrupting parity.
#[test]
fn trace_replay_healthy_and_degraded() {
    let layout = ring_layout(7, 3);
    let backend = MemBackend::new(8, COPIES * layout.size(), UNIT);
    let store = BlockStore::new(layout, backend).unwrap();
    let workload = Workload { request_units: (1, 4), read_fraction: 0.5, ..Workload::default() };
    let trace = Trace::from_workload(&workload, store.blocks(), 300, 42);

    let stats = store.replay(&trace).unwrap();
    assert_eq!(stats.reads + stats.writes, 300);
    store.verify_parity().unwrap();

    // Degraded replay: same trace with a disk down, then rebuild and
    // confirm parity self-consistency end to end.
    store.fail_disk(3).unwrap();
    store.replay(&trace).unwrap();
    Rebuilder::default().rebuild(&store, 7).unwrap();
    store.verify_parity().unwrap();
}

/// Error paths: tolerance-exceeding failure rejected, re-failing an
/// already-failed disk rejected (regression: it used to be silently
/// accepted), bad spare rejected, address bounds enforced.
#[test]
fn error_paths() {
    let layout = ring_layout(5, 2);
    let backend = MemBackend::new(6, layout.size(), UNIT);
    let store = BlockStore::new(layout, backend).unwrap();
    store.fail_disk(1).unwrap();
    assert!(
        matches!(store.fail_disk(2), Err(StoreError::TooManyFailures { tolerance: 1, .. })),
        "XOR tolerates exactly one failure"
    );
    // Regression: failing an already-failed disk must be a dedicated
    // error, not a silent overwrite of the failure state.
    assert!(matches!(store.fail_disk(1), Err(StoreError::AlreadyFailed(1))));
    assert_eq!(store.failed_disks().as_slice(), &[1], "failure state unchanged");
    // Restoring a healthy disk is an error too.
    assert!(matches!(store.restore_disk(0), Err(StoreError::NotFailed(0))));
    // spare index already mapped
    assert!(Rebuilder::new(2).rebuild(&store, 4).is_err());
    // out-of-range spare
    assert!(Rebuilder::new(2).rebuild(&store, 6).is_err());
    // valid spare works
    Rebuilder::new(2).rebuild(&store, 5).unwrap();
    assert!(Rebuilder::new(2).rebuild(&store, 5).is_err(), "nothing to rebuild");
    // After the rebuild the disk is healthy again and may re-fail.
    store.fail_disk(1).unwrap();
    store.restore_disk(1).unwrap();

    let blocks = store.blocks();
    let mut buf = vec![0u8; UNIT];
    assert!(store.read_block(blocks, &mut buf).is_err());
    let mut short = vec![0u8; UNIT - 1];
    assert!(store.read_block(0, &mut short).is_err());
}

/// Regression: a degraded write that skips a unit on the failed disk
/// leaves its medium stale, so `restore_disk` must refuse (restoring
/// used to silently resurrect pre-failure bytes, losing the
/// acknowledged write and corrupting parity). A rebuild still works
/// and re-synchronizes everything.
#[test]
fn restore_after_degraded_write_requires_rebuild() {
    let layout = ring_layout(7, 3);
    let backend = MemBackend::new(8, layout.size(), UNIT);
    let mut store = BlockStore::new(layout, backend).unwrap();
    let image = random_image(store.blocks(), 51);
    fill_store(&mut store, &image);

    // Find a block living on disk 2, then fail that disk and
    // overwrite the block while degraded.
    let addr = (0..store.blocks())
        .find(|&a| store.stripe_map().locate(a).disk == 2)
        .expect("some block lives on disk 2");
    store.fail_disk(2).unwrap();
    let fresh = vec![0x3cu8; UNIT];
    store.write_block(addr, &fresh).unwrap();
    let mut out = vec![0u8; UNIT];
    store.read_block(addr, &mut out).unwrap();
    assert_eq!(out, fresh, "degraded read returns the acknowledged write");

    // The transient restore is refused: disk 2's medium still holds
    // the pre-failure value.
    // The error names the stale disk and a concrete witness stripe a
    // degraded write skipped — check the context, not just the kind.
    match store.restore_disk(2) {
        Err(StoreError::RebuildRequired { disk, copy, stripe }) => {
            assert_eq!(disk, 2);
            let m = store.stripe_map().locate_full(addr);
            assert_eq!(
                (copy, stripe),
                (m.copy, m.stripe),
                "witness is the degraded write's stripe"
            );
        }
        other => panic!("expected RebuildRequired for disk 2, got {other:?}"),
    }
    assert!(store.is_degraded(), "failure state unchanged by the refused restore");

    // A rebuild re-synchronizes and the write survives.
    Rebuilder::new(2).rebuild(&store, 7).unwrap();
    store.verify_parity().unwrap();
    store.read_block(addr, &mut out).unwrap();
    assert_eq!(out, fresh);

    // After the rebuild, fail/restore without intervening writes is
    // transient again.
    store.fail_disk(2).unwrap();
    store.restore_disk(2).unwrap();
    store.verify_parity().unwrap();
}

/// P+Q error paths: a third failure is rejected, a double rebuild
/// needs two spares.
#[test]
fn pq_error_paths() {
    let dp = DoubleParityLayout::new(ring_layout(9, 4)).unwrap();
    let backend = MemBackend::new(12, dp.layout().size(), UNIT);
    let store = BlockStore::new_pq(dp, backend).unwrap();
    assert_eq!(store.fault_tolerance(), 2);
    store.fail_disk(2).unwrap();
    store.fail_disk(7).unwrap();
    assert!(matches!(
        store.fail_disk(0),
        Err(StoreError::TooManyFailures { requested: 0, tolerance: 2 })
    ));
    assert!(matches!(store.fail_disk(2), Err(StoreError::AlreadyFailed(2))));
    assert!(matches!(
        Rebuilder::new(2).rebuild_all(&store, &[9]),
        Err(StoreError::SparesExhausted { failed: 2, spares: 1 })
    ));
    // Duplicate or invalid spares are rejected before any phase
    // mutates the store.
    assert!(matches!(
        Rebuilder::new(2).rebuild_all(&store, &[9, 9]),
        Err(StoreError::InvalidSpare(9))
    ));
    assert!(matches!(
        Rebuilder::new(2).rebuild_all(&store, &[9, 99]),
        Err(StoreError::InvalidSpare(99))
    ));
    assert_eq!(store.failed_disks().as_slice(), &[2, 7], "no phase ran on rejected spares");
    let reports = Rebuilder::new(2).rebuild_all(&store, &[9, 10]).unwrap();
    assert_eq!(reports.len(), 2);
    assert!(!store.is_degraded());
    store.verify_parity().unwrap();
}

/// The acceptance-criteria scenario end to end, on the file backend:
/// fail two disks (wiping their media), serve degraded reads
/// correctly, write while doubly degraded, rebuild both onto spares
/// in two phases, reopen the store from its persisted metadata, and
/// read back bit-identical data.
#[test]
fn file_pq_double_failure_rebuild_reopen() {
    let dir = std::env::temp_dir().join(format!("pdl-e2e-pq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dp = DoubleParityLayout::new(ring_layout(9, 4)).unwrap();
    let mut store = pdl_store::create_file_store_pq(&dir, dp, UNIT, COPIES, 2).unwrap();
    let blocks = store.blocks();
    let mut image = random_image(blocks, 31);
    fill_store(&mut store, &image);
    store.verify_parity().unwrap();

    // Two concurrent failures; wipe the dead media so any read that
    // sneaks through to them shows up as corruption, not luck.
    store.fail_disk(1).unwrap();
    store.fail_disk(6).unwrap();
    store.backend().wipe_disk(store.physical_disk(1)).unwrap();
    store.backend().wipe_disk(store.physical_disk(6)).unwrap();
    assert!(store.is_degraded());
    assert_eq!(store.failed_disks().as_slice(), &[1, 6]);

    // Every logical block remains readable through the two-erasure
    // decode.
    assert_image_matches(&store, &image, "doubly degraded");

    // Writes while doubly degraded keep data recoverable.
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for _ in 0..blocks / 4 {
        let addr = rng.random_range(0..blocks);
        let fresh: Vec<u8> = (0..UNIT).map(|_| rng.random_range(0u64..256) as u8).collect();
        store.write_block(addr, &fresh).unwrap();
        image[addr] = fresh;
    }
    assert_image_matches(&store, &image, "doubly degraded after writes");

    // Two-phase rebuild onto the two spares.
    let reports = Rebuilder::new(4).rebuild_all(&store, &[9, 10]).unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].failed_disk, 1);
    assert_eq!(reports[0].also_failed, vec![6], "phase one ran with disk 6 still down");
    assert_eq!(reports[1].failed_disk, 6);
    assert!(reports[1].also_failed.is_empty(), "phase two ran against a repaired array");
    assert!(!store.is_degraded());
    assert_image_matches(&store, &image, "after double rebuild");
    store.verify_parity().unwrap();
    drop(store); // simulate process exit

    // Reopen purely from persisted metadata: scheme, slots, and the
    // logical→physical mapping all come back.
    let store = pdl_store::open_file_store(&dir).unwrap();
    assert_eq!(store.scheme(), pdl_store::ParityScheme::PQ);
    assert_eq!(store.physical_disk(1), 9);
    assert_eq!(store.physical_disk(6), 10);
    assert_image_matches(&store, &image, "reopened after double rebuild");
    store.verify_parity().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The declustering claim under a **double** failure: every rebuild
/// phase reads the same number of units from every surviving disk
/// (the uniform-decode policy makes this exact, not approximate), and
/// that number is (k−1)/(v−1) of a disk per failed disk — so a full
/// double rebuild costs each survivor about 2(k−1)/(v−1).
#[test]
fn double_rebuild_load_matches_declustering_claim() {
    for (v, k) in [(9usize, 4usize), (13, 4)] {
        let dp = DoubleParityLayout::new(ring_layout(v, k)).unwrap();
        let size = dp.layout().size();
        let backend = MemBackend::new(v + 2, COPIES * size, UNIT);
        let mut store = BlockStore::new_pq(dp, backend).unwrap();
        let image = random_image(store.blocks(), 17);
        fill_store(&mut store, &image);
        store.fail_disk(2).unwrap();
        store.fail_disk(5).unwrap();
        store.reset_counters();
        let reports = Rebuilder::new(4).rebuild_all(&store, &[v, v + 1]).unwrap();

        let expect = (k - 1) as f64 / (v - 1) as f64;
        for (phase, report) in reports.iter().enumerate() {
            assert!(
                report.read_imbalance() <= 0.01,
                "v={v} k={k} phase {phase}: reads not balanced within 1%: {:?}",
                report.per_disk_reads
            );
            let fraction = report.mean_read_fraction();
            assert!(
                (fraction - expect).abs() <= 0.01 * expect,
                "v={v} k={k} phase {phase}: expected (k-1)/(v-1) = {expect}, measured {fraction}"
            );
        }
        assert_image_matches(&store, &image, "after measured double rebuild");
        store.verify_parity().unwrap();
    }
}
