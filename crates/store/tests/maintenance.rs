//! Background-maintenance suite: the store-owned reshape driver and
//! continuous load-aware scrubbing, alone and racing each other under
//! client traffic (the CI maintenance matrix runs the `${mode}_${backend}`
//! tests at 2/4/8 threads under both cache policies), plus the
//! kill-and-reopen battery proving a stopped driver resumes at the
//! persisted cursor, the rate-based health auto-fail, and the
//! checksum-sidecar incremental log's torn-tail crash window.
//!
//! Reproducibility mirrors the concurrency suite: racing schedules
//! derive from a seed recorded to `target/stress/<name>.seed` before
//! the run, and `PDL_STRESS_SEED` / `PDL_STRESS_THREADS` replay one.

use pdl_core::RingLayout;
use pdl_store::stress::{self, RebuildMode, StressConfig};
use pdl_store::{
    create_file_store, fill_pattern, open_file_store, Backend, BlockStore, ContinuousScrubConfig,
    FaultConfig, FaultyBackend, FileBackend, MemBackend, ReshapeDriverConfig, ReshapeOptions,
    ScrubConfig, StoreError, SUMS_FILE, SUMS_LOG_FILE,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNIT: usize = 64;
const COPIES: usize = 8;

/// Where CI picks up the seeds of a failed run.
fn seed_file(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/stress");
    std::fs::create_dir_all(&dir).expect("create seed dir");
    dir.join(format!("{name}.seed"))
}

fn record_seed(name: &str, seed: u64) {
    std::fs::write(seed_file(name), format!("PDL_STRESS_SEED={seed}\n"))
        .expect("record seed for CI");
}

fn base_config(name: &str) -> StressConfig {
    let cfg = StressConfig { ops_per_thread: 300, ..StressConfig::default() }.with_env_overrides();
    record_seed(name, cfg.seed);
    cfg
}

fn with_default_threads(mut cfg: StressConfig, threads: usize) -> StressConfig {
    if std::env::var("PDL_STRESS_THREADS").is_err() {
        cfg.threads = threads;
    }
    cfg
}

fn xor_store_mem() -> BlockStore<MemBackend> {
    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let backend = MemBackend::new(9 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, backend).unwrap()
}

/// Runs `f` with a file-backed XOR store in a fresh temp dir.
fn with_xor_store_file(name: &str, f: impl FnOnce(BlockStore<FileBackend>)) {
    let dir = std::env::temp_dir().join(format!("pdl-maint-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let backend = FileBackend::create(&dir, 9 + 2, COPIES * layout.size(), UNIT).unwrap();
    f(BlockStore::new(layout, backend).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

fn prefill<B: Backend>(store: &BlockStore<B>, salt: u64) {
    let mut block = vec![0u8; store.unit_size()];
    for addr in 0..store.blocks() {
        fill_pattern(addr, salt, &mut block);
        store.write_block(addr, &block).unwrap();
    }
}

/// Physical disks not mapped to any logical disk (reshape candidates).
fn spares<B: Backend>(store: &BlockStore<B>) -> Vec<usize> {
    let mapped: Vec<usize> = (0..store.v()).map(|d| store.physical_disk(d)).collect();
    (0..store.backend().disks()).filter(|p| !mapped.contains(p)).collect()
}

/// Polls `cond` (on the stats snapshot) until it holds or `timeout`
/// elapses; panics with `what` on timeout.
fn wait_for<B: Backend>(
    store: &BlockStore<B>,
    timeout: Duration,
    what: &str,
    cond: impl Fn(&pdl_store::StatsSnapshot) -> bool,
) {
    let deadline = Instant::now() + timeout;
    loop {
        if cond(&store.stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The continuous scrubber on an idle store: passes complete back to
/// back, the idle interval fires auto-restarts, a second scrub of any
/// flavor is refused while the loop owns the slot, and the
/// accumulated report agrees with the scheduler counters.
fn scrub_continuous_case<B: Backend + 'static>(store: Arc<BlockStore<B>>) {
    prefill(&store, 0x5eed);
    let cfg = ContinuousScrubConfig { idle_ms: 5, ..ContinuousScrubConfig::default() };
    let handle = store.start_continuous_scrub(cfg.clone()).unwrap();

    // Auto-restart satellite: at least one full pass, one idle wait,
    // and one restarted pass must be observable from stats alone.
    wait_for(&store, Duration::from_secs(30), "two continuous passes", |s| {
        s.maintenance.continuous_passes >= 2 && s.maintenance.idle_restarts >= 1
    });
    let live = store.stats();
    assert!(live.maintenance.continuous_scrub_active, "loop advertises itself in stats");
    assert!(
        matches!(store.scrub(&ScrubConfig::default()), Err(StoreError::ScrubInProgress)),
        "foreground scrub admission is refused while the loop runs"
    );
    assert!(
        matches!(store.start_continuous_scrub(cfg), Err(StoreError::ScrubInProgress)),
        "a second continuous loop is refused"
    );

    handle.stop();
    let report = handle.join().unwrap();
    assert!(report.passes >= 2, "expected >=2 completed passes, got {}", report.passes);
    assert!(report.idle_restarts >= 1, "idle interval never fired a restart");
    assert!(report.stripes > 0);
    assert_eq!(report.checksum_repairs, 0, "clean store needs no repairs");
    assert_eq!(report.parity_repairs, 0);

    let after = store.stats();
    assert!(!after.maintenance.continuous_scrub_active, "flag cleared on join");
    assert!(after.maintenance.continuous_passes >= report.passes);
    // The slot is free again: a foreground paced pass runs clean.
    let pass = store
        .scrub_paced(&ContinuousScrubConfig::default())
        .expect("slot released after the loop stopped");
    assert!(pass.completed);
    assert_eq!(pass.checksum_repairs, 0);
    assert!(store.stats().maintenance.paced_passes > after.maintenance.paced_passes);
    store.verify_parity().unwrap();
}

#[test]
fn maintenance_scrub_continuous_mem() {
    scrub_continuous_case(Arc::new(xor_store_mem()));
}

#[test]
fn maintenance_scrub_continuous_file() {
    with_xor_store_file("scrub-cont", |store| scrub_continuous_case(Arc::new(store)));
}

/// The background reshape driver as fire-and-forget capacity growth:
/// `add_disks_background` begins the reshape and drives it to commit
/// while a writer keeps re-salting a region; the grown array must be
/// bit-exact and the scheduler must refuse a second driver.
fn reshape_driver_case<B: Backend + 'static>(store: Arc<BlockStore<B>>) {
    let salt = 0xd21fe2u64;
    prefill(&store, salt);
    let salts: Vec<AtomicU64> = (0..store.blocks()).map(|_| AtomicU64::new(salt)).collect();

    assert!(
        matches!(
            store.start_reshape_driver(ReshapeDriverConfig::default()),
            Err(StoreError::NoActiveReshape)
        ),
        "a driver without a begun reshape is refused (and must not wedge the slot)"
    );

    let joining = vec![spares(&store)[0]];
    let handle = store
        .add_disks_background(&joining, ReshapeDriverConfig { batches_per_step: 1, sleep_us: 100 })
        .unwrap();
    assert!(
        matches!(
            store.drive_reshape(&ReshapeDriverConfig::default()),
            Err(StoreError::ReshapeDriverInProgress)
        ),
        "one driver at a time"
    );

    // Re-salt a region while the driver migrates underneath it.
    let region = store.blocks() / 4;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let salts = &salts;
        let store = &store;
        s.spawn(move || {
            let mut buf = vec![0u8; store.unit_size()];
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                let addr = (n % region as u64) as usize;
                let new_salt = salt ^ (0x1000 + n);
                fill_pattern(addr, new_salt, &mut buf);
                store.write_block(addr, &buf).unwrap();
                salts[addr].store(new_salt, Ordering::Release);
                n += 1;
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        let report = handle.join().unwrap();
        stop.store(true, Ordering::Release);
        let commit = report.report.expect("a never-stopped driver runs to commit");
        assert_eq!(commit.to_v, 10);
        assert!(report.steps > 0);
    });

    assert_eq!(store.v(), 10, "the driver committed the grow");
    assert!(!store.reshaping());
    let m = store.stats().maintenance;
    assert_eq!(m.driver_runs, 1);
    assert!(m.driver_steps > 0);
    assert!(!m.reshape_driver_active, "flag cleared after commit");

    // Old capacity bit-exact against the shadow salts; new capacity
    // (if any) zero-filled is the reshape suite's concern.
    let mut got = vec![0u8; store.unit_size()];
    let mut want = vec![0u8; store.unit_size()];
    for (addr, s) in salts.iter().enumerate() {
        store.read_block(addr, &mut got).unwrap();
        fill_pattern(addr, s.load(Ordering::Acquire), &mut want);
        assert_eq!(got, want, "block {addr} not bit-exact after background grow");
    }
    store.verify_parity().unwrap();
}

#[test]
fn maintenance_reshape_driver_mem() {
    reshape_driver_case(Arc::new(xor_store_mem()));
}

#[test]
fn maintenance_reshape_driver_file() {
    with_xor_store_file("driver", |store| reshape_driver_case(Arc::new(store)));
}

/// Both maintenance tasks racing full client traffic: the stress
/// harness's `BackgroundMaintenance` mode runs a continuous scrubber
/// *and* a background add-disks driver under the seeded mixed
/// workload. The reshape must commit, the scrubber must have run, and
/// the array must verify.
fn both_racing_case<B: Backend + 'static>(name: &str, store: &BlockStore<B>) {
    let cfg = with_default_threads(base_config(name), 8);
    let cfg = StressConfig { rebuild: RebuildMode::BackgroundMaintenance { added: 1 }, ..cfg };
    let report = stress::run(store, &cfg).unwrap();
    report
        .write_stats_json(seed_file(name).with_extension("stats.json"))
        .expect("record stats for CI");

    let reshape = report.reshape.as_ref().expect("background driver committed the reshape");
    assert_eq!(reshape.to_v, 10);
    let scrub = report.scrub.as_ref().expect("continuous scrubber ran");
    assert!(scrub.stripes > 0 || scrub.passes > 0, "scrubber did some work");
    assert_eq!(report.stats.maintenance.driver_runs, 1);
    assert!(!report.stats.maintenance.reshape_driver_active);
    assert!(!report.stats.maintenance.continuous_scrub_active);
    assert_eq!(store.v(), 10);
    store.verify_parity().unwrap();
}

#[test]
fn maintenance_both_racing_mem() {
    let store = xor_store_mem();
    both_racing_case("maint_both_racing_mem", &store);
}

#[test]
fn maintenance_both_racing_file() {
    with_xor_store_file("both-racing", |store| {
        both_racing_case("maint_both_racing_file", &store);
    });
}

/// The acceptance battery: a file store running a continuous scrub, a
/// background add-disks driver, and live writes is stopped mid-flight
/// (the driver checkpoints its cursor) and dropped — the kill. The
/// reopened store must resume the reshape at the persisted cursor
/// (not from zero), a fresh driver must report the resume and run to
/// commit, and the array must come out bit-exact.
#[test]
fn maintenance_driver_resumes_at_persisted_cursor_file() {
    for seed in [0x900d_5eedu64, 0x0ba7_7e21, 0x7e57_ab1e] {
        record_seed("maint_resume_file", seed);
        let dir =
            std::env::temp_dir().join(format!("pdl-maint-resume-{seed:x}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let layout = RingLayout::for_v_k(9, 4).layout().clone();
        let store = Arc::new(create_file_store(&dir, layout, UNIT, COPIES, 2).unwrap());
        prefill(&store, seed);
        let salts: Vec<AtomicU64> = (0..store.blocks()).map(|_| AtomicU64::new(seed)).collect();

        let scrub = store
            .start_continuous_scrub(ContinuousScrubConfig {
                idle_ms: 1,
                load_budget: 0.3,
                ..ContinuousScrubConfig::default()
            })
            .unwrap();
        let joining = vec![spares(&*store)[0]];
        store
            .begin_add_disks_with(
                &joining,
                &ReshapeOptions { batch_stripes: 1, checkpoint_every: 1, ..Default::default() },
            )
            .unwrap();
        let driver = store
            .start_reshape_driver(ReshapeDriverConfig { batches_per_step: 1, sleep_us: 1500 })
            .unwrap();

        let region = store.blocks() / 4;
        let stop_writes = AtomicBool::new(false);
        let cursor = std::thread::scope(|s| {
            let stop_writes = &stop_writes;
            let salts = &salts;
            let store_ref: &BlockStore<FileBackend> = &store;
            s.spawn(move || {
                let mut buf = vec![0u8; store_ref.unit_size()];
                let mut n = 0u64;
                while !stop_writes.load(Ordering::Acquire) {
                    let addr = (seed.wrapping_add(n) % region as u64) as usize;
                    let new_salt = seed ^ (0x4000 + n);
                    fill_pattern(addr, new_salt, &mut buf);
                    store_ref.write_block(addr, &buf).unwrap();
                    salts[addr].store(new_salt, Ordering::Release);
                    n += 1;
                    std::thread::sleep(Duration::from_micros(100));
                }
            });

            wait_for(&store, Duration::from_secs(30), "migration progress", |st| {
                st.reshape.as_ref().is_some_and(|r| r.stripes_done >= 2)
            });
            driver.stop();
            let rep = driver.join().unwrap();
            assert!(
                rep.report.is_none(),
                "seed {seed:x}: driver finished before the stop landed — shrink the poll target"
            );
            stop_writes.store(true, Ordering::Release);
            store.stats().reshape.expect("reshape still active after stop").stripes_done
        });
        scrub.stop();
        scrub.join().unwrap();
        assert!(cursor >= 2);
        drop(store); // the kill: no flush, no graceful close

        let reopened = Arc::new(open_file_store(&dir).unwrap());
        assert!(reopened.reshaping(), "reopen resumes the migrate phase");
        let resumed = reopened.stats().reshape.expect("resumed runtime visible").stripes_done;
        assert_eq!(
            resumed, cursor,
            "seed {seed:x}: the stop-checkpoint made the live cursor durable"
        );

        let driver2 = reopened
            .start_reshape_driver(ReshapeDriverConfig { batches_per_step: 4, sleep_us: 0 })
            .unwrap();
        let rep2 = driver2.join().unwrap();
        assert_eq!(rep2.resumed_from, resumed, "seed {seed:x}: driver attached at the checkpoint");
        let commit = rep2.report.expect("second driver runs to commit");
        assert_eq!(commit.to_v, 10);
        let m = reopened.stats().maintenance;
        assert_eq!(m.driver_resumes, 1, "the resume was counted");
        assert_eq!(m.driver_runs, 1);
        assert_eq!(reopened.v(), 10);

        // Bit-exact against the shadow salts. The checksum sidecar may
        // be stale inside the crash window — read-repair self-heals it
        // — so sweep first, then prove a scrub converges to clean.
        let mut got = vec![0u8; reopened.unit_size()];
        let mut want = vec![0u8; reopened.unit_size()];
        for (addr, s) in salts.iter().enumerate() {
            reopened.read_block(addr, &mut got).unwrap();
            fill_pattern(addr, s.load(Ordering::Acquire), &mut want);
            assert_eq!(got, want, "seed {seed:x}: block {addr} not bit-exact after resume");
        }
        reopened.scrub(&ScrubConfig::default()).unwrap();
        let clean = reopened.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(clean.checksum_repairs, 0, "seed {seed:x}: second scrub is clean");
        assert_eq!(clean.parity_repairs, 0);
        reopened.verify_parity().unwrap();
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Rate-based health auto-fail, end to end through the read path: a
/// burst of read-repairs on one disk trips the decaying-window policy
/// and the store takes the disk out of service; the same number of
/// repairs spread across many windows never trips it.
#[test]
fn maintenance_rate_autofail_burst_not_drizzle_mem() {
    let seed = 0xdecafu64;
    let mk = || {
        let layout = RingLayout::for_v_k(7, 3).layout().clone();
        let mem = MemBackend::new(7 + 2, 2 * layout.size(), UNIT);
        BlockStore::new(layout, FaultyBackend::new(mem, FaultConfig::quiet(seed))).unwrap()
    };

    // Burst: every unit of one disk rots; a sweep repairs them back to
    // back, well inside the 60s window, and the policy trips.
    let store = mk();
    store.set_health_rate_policy(4, 60_000);
    prefill(&store, seed);
    let pd = store.physical_disk(4);
    for off in 0..store.backend().units_per_disk() {
        store.backend().corrupt_unit(pd, off).unwrap();
    }
    let mut buf = vec![0u8; UNIT];
    for addr in 0..store.blocks() {
        store.read_block(addr, &mut buf).unwrap();
        if store.is_degraded() {
            break;
        }
    }
    let health = store.stats().integrity.disk_health;
    let h = health.iter().find(|h| h.disk == pd).expect("rotting disk tracked");
    assert!(h.auto_failed, "burst of repairs tripped the rate policy");
    assert!(h.recent >= 4, "recent-window counter crossed the threshold, got {}", h.recent);
    assert!(matches!(store.fail_disk(4), Err(StoreError::AlreadyFailed(4))));

    // Drizzle: the same corruption, but reads spaced so each repair
    // lands in its own (short) window — the counter decays between
    // them and the disk stays in service despite >=4 total repairs.
    let store = mk();
    store.set_health_rate_policy(4, 40);
    prefill(&store, seed);
    let pd = store.physical_disk(4);
    for off in 0..store.backend().units_per_disk() {
        store.backend().corrupt_unit(pd, off).unwrap();
    }
    let mut repairs_seen = 0u64;
    for addr in 0..store.blocks() {
        let before = store.stats().integrity.checksum_repairs;
        store.read_block(addr, &mut buf).unwrap();
        if store.stats().integrity.checksum_repairs > before {
            repairs_seen += 1;
            if repairs_seen >= 6 {
                break;
            }
            // Sit out more than a full window so the counter halves.
            std::thread::sleep(Duration::from_millis(80));
        }
    }
    assert!(repairs_seen >= 5, "drizzle produced {repairs_seen} repairs; need >=5 for the proof");
    assert!(!store.is_degraded(), "spread-out repairs must not trip the rate policy");
    let health = store.stats().integrity.disk_health;
    let h = health.iter().find(|h| h.disk == pd).expect("drizzled disk tracked");
    assert!(!h.auto_failed);
    assert!(h.repairs >= 5, "cumulative score still counts every repair");
}

/// The incremental checksum-sidecar log's crash window: flushes after
/// the base write append dirty entries to `checksums.log`; a reopen
/// replays them (a scrub is clean, proving the reopened table matches
/// the rewritten content); and a torn tail — the crash landing mid
/// append — is detected and ignored without failing the open.
#[test]
fn maintenance_torn_sums_log_crash_window_file() {
    let dir = std::env::temp_dir().join(format!("pdl-maint-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let store = create_file_store(&dir, layout, UNIT, 2, 2).unwrap();
    let salt = 0x70e2u64;
    prefill(&store, salt);
    store.flush().unwrap(); // first persist: full base rewrite
    let base_len = std::fs::metadata(dir.join(SUMS_FILE)).unwrap().len();

    // Rewrite a slice of blocks and flush twice — both flushes must
    // append to the log instead of rewriting the base.
    let mut buf = vec![0u8; UNIT];
    for pass in 0..2u64 {
        for addr in 0..8 {
            fill_pattern(addr, salt ^ (1 + pass), &mut buf);
            store.write_block(addr, &buf).unwrap();
        }
        store.flush().unwrap();
    }
    assert_eq!(
        std::fs::metadata(dir.join(SUMS_FILE)).unwrap().len(),
        base_len,
        "incremental flushes left the base table alone"
    );
    let log_len = std::fs::metadata(dir.join(SUMS_LOG_FILE)).unwrap().len();
    assert!(log_len > 0, "dirty entries were appended to the log");
    drop(store); // crash: the freshest sums live only in the log

    // Replay proof: if the reopened table still held the base's stale
    // sums for the rewritten blocks, the scrub would "repair" them.
    let store = open_file_store(&dir).unwrap();
    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!(report.checksum_repairs, 0, "log replay restored the fresh sums");
    for addr in 0..8 {
        store.read_block(addr, &mut buf).unwrap();
        let mut want = vec![0u8; UNIT];
        fill_pattern(addr, salt ^ 2, &mut want);
        assert_eq!(buf, want, "block {addr} reads the rewritten content");
    }
    drop(store);

    // Torn tail: a crash mid-append leaves a partial record. The open
    // must succeed, keep every complete record, and ignore the tail.
    for garbage in [&b"PSL1\x02\x00\x00"[..], &[0xffu8; 19][..]] {
        use std::io::Write as _;
        // `create(true)`: the previous round's scrub flush compacted
        // the (torn) log away, so the second round starts one afresh.
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(SUMS_LOG_FILE))
            .unwrap();
        f.write_all(garbage).unwrap();
        drop(f);
        let store = open_file_store(&dir).unwrap();
        let report = store.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(report.checksum_repairs, 0, "torn tail ignored, complete prefix still applied");
        store.verify_parity().unwrap();
        drop(store);
        // The scrub's own flush compacts: the log resets and the next
        // torn-tail round starts from a clean base again.
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
