//! Property tests across every layout family in `pdl-design`: the
//! parity invariants hold after arbitrary seeded write sequences
//! (XOR and P+Q), and double-failure reconstruction is bit-exact for
//! **every** pair of failed disks.

use pdl_core::{holland_gibson_layout, raid5_layout, DoubleParityLayout, Layout, RingLayout};
use pdl_design::{complete_design, steiner_triple_system, theorem4_design, theorem6_design};
use pdl_store::{Backend, BlockStore, MemBackend, ParityScheme};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

const UNIT: usize = 32;

/// One layout per construction family exercised by the store:
/// ring-based (Theorem 1), RAID5 baseline, Holland–Gibson over the
/// complete design, the symmetric-generator designs (Theorem 4), the
/// subfield designs (Theorem 6), and Steiner triple systems.
fn families() -> Vec<(&'static str, Layout)> {
    vec![
        ("ring_v7_k3", RingLayout::for_v_k(7, 3).layout().clone()),
        ("ring_v9_k4", RingLayout::for_v_k(9, 4).layout().clone()),
        ("raid5_v6", raid5_layout(6, 12)),
        ("hg_complete_v6_k3", holland_gibson_layout(&complete_design(6, 3, 100))),
        ("hg_thm4_v13_k4", holland_gibson_layout(&theorem4_design(13, 4).design)),
        ("hg_thm6_v9_k3", holland_gibson_layout(&theorem6_design(9, 3).design)),
        ("hg_sts_v7", holland_gibson_layout(&steiner_triple_system(7).design)),
    ]
}

/// A seeded sequence of small writes and multi-block runs, mirrored
/// into a shadow image.
fn seeded_writes<B: Backend>(
    store: &mut BlockStore<B>,
    image: &mut [Vec<u8>],
    seed: u64,
    ops: usize,
) {
    let blocks = store.blocks();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..ops {
        if rng.random_bool(0.3) {
            // Multi-block run (may hit the full-stripe fast path).
            let len = rng.random_range(1..=8usize).min(blocks);
            let addr = rng.random_range(0..=blocks - len);
            let mut data = vec![0u8; len * UNIT];
            rng.fill_bytes(&mut data);
            store.write_blocks(addr, &data).unwrap();
            for (j, chunk) in data.chunks_exact(UNIT).enumerate() {
                image[addr + j] = chunk.to_vec();
            }
        } else {
            let addr = rng.random_range(0..blocks);
            let mut data = vec![0u8; UNIT];
            rng.fill_bytes(&mut data);
            store.write_block(addr, &data).unwrap();
            image[addr] = data;
        }
    }
}

fn assert_image<B: Backend>(store: &BlockStore<B>, image: &[Vec<u8>], what: &str) {
    let mut out = vec![0u8; UNIT];
    for (addr, block) in image.iter().enumerate() {
        store.read_block(addr, &mut out).unwrap();
        assert_eq!(&out, block, "{what}: block {addr} differs");
    }
}

/// XOR: after an arbitrary seeded write sequence the parity invariant
/// holds and every block reads back, for every layout family.
#[test]
fn xor_parity_holds_after_seeded_writes_all_families() {
    for (name, layout) in families() {
        for seed in [1u64, 42] {
            let backend = MemBackend::new(layout.v(), 2 * layout.size(), UNIT);
            let mut store = BlockStore::new(layout.clone(), backend).unwrap();
            let mut image = vec![vec![0u8; UNIT]; store.blocks()];
            seeded_writes(&mut store, &mut image, seed, 150);
            store.verify_parity().unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_image(&store, &image, name);
        }
    }
}

/// P+Q: the same property with both parity equations, for every
/// family that can carry two parity units (stripes of ≥ 3).
#[test]
fn pq_parity_holds_after_seeded_writes_all_families() {
    for (name, layout) in families() {
        if layout.stripe_size_range().0 < 3 {
            continue;
        }
        let dp = DoubleParityLayout::new(layout).unwrap();
        for seed in [7u64, 99] {
            let backend = MemBackend::new(dp.layout().v(), 2 * dp.layout().size(), UNIT);
            let mut store = BlockStore::new_pq(dp.clone(), backend).unwrap();
            assert_eq!(store.scheme(), ParityScheme::PQ);
            let mut image = vec![vec![0u8; UNIT]; store.blocks()];
            seeded_writes(&mut store, &mut image, seed, 150);
            store.verify_parity().unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_image(&store, &image, name);
        }
    }
}

/// P+Q double-failure reconstruction is exact for **all** disk pairs:
/// every stripe therefore proves every (lost, lost) slot combination
/// it can express — data+data, data+P, data+Q, and P+Q.
#[test]
fn pq_double_failure_exact_for_all_disk_pairs() {
    for (name, layout) in families() {
        if layout.stripe_size_range().0 < 3 {
            continue;
        }
        let v = layout.v();
        let dp = DoubleParityLayout::new(layout).unwrap();
        let backend = MemBackend::new(v, dp.layout().size(), UNIT);
        let mut store = BlockStore::new_pq(dp, backend).unwrap();
        let mut image = vec![vec![0u8; UNIT]; store.blocks()];
        seeded_writes(&mut store, &mut image, 0xfeed, 120);
        store.verify_parity().unwrap();

        for f1 in 0..v {
            for f2 in f1 + 1..v {
                store.fail_disk(f1).unwrap();
                store.fail_disk(f2).unwrap();
                assert_image(&store, &image, &format!("{name} failed ({f1}, {f2})"));
                // Transient failures: contents are intact, so restore
                // instead of rebuilding 36× per family.
                store.restore_disk(f1).unwrap();
                store.restore_disk(f2).unwrap();
            }
        }
        store.verify_parity().unwrap();
    }
}

/// XOR single-failure reconstruction is exact for every disk, for
/// every family (the f=1 analogue of the pair sweep above).
#[test]
fn xor_single_failure_exact_for_all_disks() {
    for (name, layout) in families() {
        let v = layout.v();
        let backend = MemBackend::new(v, layout.size(), UNIT);
        let mut store = BlockStore::new(layout, backend).unwrap();
        let mut image = vec![vec![0u8; UNIT]; store.blocks()];
        seeded_writes(&mut store, &mut image, 0xabcd, 120);
        store.verify_parity().unwrap();
        for f in 0..v {
            store.fail_disk(f).unwrap();
            assert_image(&store, &image, &format!("{name} failed {f}"));
            store.restore_disk(f).unwrap();
        }
        store.verify_parity().unwrap();
    }
}
