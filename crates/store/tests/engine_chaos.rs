//! Chaos battery for the async I/O engine: the same seeded fault
//! model as `chaos.rs` — transient errors, stalling calls, torn
//! writes, silent corruption — driven through the per-disk
//! submission queues instead of the synchronous backend path. The
//! engine must be *transparent* to the fault-handling stack:
//! transients retry inside the workers with the same policy the sync
//! path uses (no error ever reaches a completion), hard failures
//! surface through the tokens exactly once each, corruption found on
//! an engine read or scrub burst repairs identically, and — the
//! engine's own contract — every token handed out is fulfilled, on
//! success, error, and shutdown alike: `completed` must equal
//! `submitted` once the traffic quiesces.
//!
//! Reproducibility mirrors `chaos.rs`: seeds land in
//! `target/chaos/engine_<name>.seed` before each leg and
//! `PDL_CHAOS_SEED=<n>` replays exactly one seed.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    stress, BlockStore, EngineConfig, FaultConfig, FaultyBackend, FileBackend, MemBackend,
    RebuildMode, ScrubConfig, StressConfig,
};
use std::path::PathBuf;

const UNIT: usize = 64;
const COPIES: usize = 2;

fn seed_file(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos");
    std::fs::create_dir_all(&dir).expect("create seed dir");
    dir.join(format!("engine_{name}.seed"))
}

fn seeds_under_test() -> Vec<u64> {
    if let Ok(s) = std::env::var("PDL_CHAOS_SEED") {
        vec![s.parse().expect("PDL_CHAOS_SEED must be a u64")]
    } else {
        vec![0xe46e, 23]
    }
}

fn record_seeds(name: &str, seeds: &[u64]) {
    let body: String = seeds.iter().map(|s| format!("PDL_CHAOS_SEED={s}\n")).collect();
    std::fs::write(seed_file(name), body).expect("record seeds for CI");
}

/// Transients and stalls only — retryable noise the engine's workers
/// must absorb without a single completion seeing an error.
fn noisy(seed: u64) -> FaultConfig {
    FaultConfig { transient_rate: 0.003, slow_rate: 0.002, slow_us: 30, ..FaultConfig::quiet(seed) }
}

fn xor_faulty_mem(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let mem = MemBackend::new(7 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, FaultyBackend::new(mem, cfg)).unwrap()
}

fn pq_faulty_mem(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let mem = MemBackend::new(9 + 2, COPIES * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, FaultyBackend::new(mem, cfg)).unwrap()
}

fn xor_faulty_file(dir: &PathBuf, cfg: FaultConfig) -> BlockStore<FaultyBackend<FileBackend>> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let fb = FileBackend::create(dir, 7 + 2, COPIES * layout.size(), UNIT).unwrap();
    BlockStore::new(layout, FaultyBackend::new(fb, cfg)).unwrap()
}

/// Multi-threaded stress with the engine on: every hot path routed
/// through the queues, a rebuild racing the traffic, transients and
/// stalls firing throughout, and the harness's own bit-exact final
/// sweep (also engine-served) as the correctness oracle.
fn engine_stress_case(
    name: &str,
    make: impl Fn(FaultConfig) -> BlockStore<FaultyBackend<MemBackend>>,
) {
    let seeds = seeds_under_test();
    record_seeds(name, &seeds);
    for seed in seeds {
        let store = make(noisy(seed));
        let cfg = StressConfig {
            threads: 3,
            ops_per_thread: 250,
            seed,
            fail_disk: Some(2),
            rebuild: RebuildMode::Racing { spare: 7 },
            engine: Some(EngineConfig::default()),
            ..StressConfig::default()
        };
        let report = stress::run(&store, &cfg).unwrap();
        assert!(report.reads + report.writes > 0, "[chaos seed {seed}] traffic ran");
        assert!(
            store.backend().injected_transients() > 0,
            "[chaos seed {seed}] schedule must actually fire"
        );
        let eng = report.stats.engine.as_ref().expect("stats carry the live engine section");
        assert!(eng.client_submitted > 0, "[chaos seed {seed}] client ops used the queues");
        assert_eq!(
            eng.completed,
            eng.client_submitted + eng.maintenance_submitted,
            "[chaos seed {seed}] every token fulfilled once the traffic quiesced"
        );
        assert_eq!(
            eng.errors, 0,
            "[chaos seed {seed}] transients retry inside the workers, \
             identically to the sync path — none may surface"
        );
    }
}

#[test]
fn engine_chaos_transients_under_racing_rebuild_mem() {
    engine_stress_case("transients_mem", xor_faulty_mem);
}

#[test]
fn engine_chaos_transients_under_racing_rebuild_file() {
    let seeds = seeds_under_test();
    record_seeds("transients_file", &seeds);
    for seed in seeds {
        let dir =
            std::env::temp_dir().join(format!("pdl-engine-chaos-{}-{seed}", std::process::id()));
        let store = xor_faulty_file(&dir, noisy(seed));
        let cfg = StressConfig {
            threads: 3,
            ops_per_thread: 250,
            seed,
            fail_disk: Some(2),
            rebuild: RebuildMode::Racing { spare: 7 },
            engine: Some(EngineConfig::default()),
            ..StressConfig::default()
        };
        let report = stress::run(&store, &cfg).unwrap();
        let eng = report.stats.engine.as_ref().expect("stats carry the live engine section");
        assert_eq!(eng.completed, eng.client_submitted + eng.maintenance_submitted);
        assert_eq!(eng.errors, 0, "[chaos seed {seed}] transients must be retried, not surfaced");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Silent corruption planted on the medium, then found and repaired
/// by a scrub whose read burst goes through the **maintenance** lane
/// of the queues: the repair outcome must be identical to the sync
/// path (everything fixed, second pass clean), and the lane split
/// must be visible in the engine counters.
#[test]
fn engine_scrub_burst_repairs_planted_corruption() {
    let seeds = seeds_under_test();
    record_seeds("scrub_repair", &seeds);
    for seed in seeds {
        let store = pq_faulty_mem(FaultConfig::quiet(seed));
        let blocks = store.blocks();
        let data = vec![0xabu8; UNIT];
        for addr in 0..blocks {
            store.write_block(addr, &data).unwrap();
        }
        // Two distinct disks: any one stripe holds at most one unit
        // of each, so no stripe exceeds the P+Q redundancy.
        store.backend().corrupt_unit(0, 3).unwrap();
        store.backend().corrupt_unit(1, 10).unwrap();
        store.start_engine(EngineConfig::default());
        let report = store.scrub(&ScrubConfig::default()).unwrap();
        assert!(
            report.checksum_repairs >= 2,
            "[chaos seed {seed}] both planted corruptions repaired (got {})",
            report.checksum_repairs
        );
        let clean = store.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(
            (clean.checksum_repairs, clean.parity_repairs),
            (0, 0),
            "[chaos seed {seed}] second engine scrub must be clean"
        );
        let eng = store.stats().engine.expect("engine running");
        assert!(
            eng.maintenance_submitted > 0,
            "[chaos seed {seed}] scrub bursts ride the maintenance lane"
        );
        assert_eq!(eng.completed, eng.client_submitted + eng.maintenance_submitted);
        store.stop_engine();
        store.verify_parity().unwrap();
        for addr in 0..blocks {
            let mut got = vec![0u8; UNIT];
            store.read_block(addr, &mut got).unwrap();
            assert_eq!(got, data, "[chaos seed {seed}] block {addr} corrupted");
        }
    }
}

/// A torn multi-unit write fails non-transiently inside a worker: the
/// error must surface through the tokens (first request the original,
/// coalesced peers a reconstruction), every token must still be
/// fulfilled, and the store must heal once the schedule disarms.
#[test]
fn engine_torn_write_surfaces_error_without_leaking_tokens() {
    let seeds = seeds_under_test();
    record_seeds("torn_write", &seeds);
    for seed in seeds {
        let store = xor_faulty_mem(FaultConfig { torn_rate: 1.0, ..FaultConfig::quiet(seed) });
        let blocks = store.blocks();
        let data: Vec<u8> = (0..blocks * UNIT).map(|i| (i % 251) as u8).collect();
        store.backend().set_armed(false);
        store.write_blocks(0, &data).unwrap();
        store.backend().set_armed(true);
        store.start_engine(EngineConfig::default());
        // Every multi-unit write now tears: the engine write path must
        // return an error (not hang, not panic) with all tokens
        // drained.
        let err = store.write_blocks(0, &data);
        assert!(err.is_err(), "[chaos seed {seed}] torn writes must surface");
        assert!(
            store.backend().injected_torn() > 0,
            "[chaos seed {seed}] the schedule must actually tear"
        );
        let eng = store.stats().engine.expect("engine running");
        assert_eq!(
            eng.completed,
            eng.client_submitted + eng.maintenance_submitted,
            "[chaos seed {seed}] no token leaked on error"
        );
        assert!(eng.errors > 0, "[chaos seed {seed}] failures counted");
        // Disarm and heal: rewrite through the still-running engine,
        // then prove the bytes and the parity invariants.
        store.backend().set_armed(false);
        store.write_blocks(0, &data).unwrap();
        let mut got = vec![0u8; UNIT];
        for addr in 0..blocks {
            store.read_block(addr, &mut got).unwrap();
            assert_eq!(
                got,
                &data[addr * UNIT..(addr + 1) * UNIT],
                "[chaos seed {seed}] block {addr} corrupted after heal"
            );
        }
        store.stop_engine();
        store.verify_parity().unwrap();
    }
}

/// Forced transients around engine shutdown: tokens submitted right
/// before `stop_engine` are all fulfilled (served or failed by the
/// drain sweep), and a stopped engine rejects new submissions instead
/// of hanging.
#[test]
fn engine_stop_under_forced_transients_fulfils_everything() {
    let seeds = seeds_under_test();
    record_seeds("stop_drain", &seeds);
    for seed in seeds {
        let store = xor_faulty_mem(noisy(seed));
        store.start_engine(EngineConfig { workers: 2, ..EngineConfig::default() });
        store.backend().fail_next(3);
        let mut buf = vec![0u8; UNIT];
        // Reads retry through the forced transients exactly like the
        // sync path — the client sees clean data, not errors.
        for addr in 0..8 {
            store.read_block(addr, &mut buf).unwrap();
        }
        let eng = store.stats().engine.expect("engine running");
        assert_eq!(eng.errors, 0, "[chaos seed {seed}] forced transients retried");
        store.stop_engine();
        // After stop the store transparently falls back to the sync
        // path — reads still work.
        store.read_block(0, &mut buf).unwrap();
        assert!(store.stats().engine.is_none(), "engine section absent once stopped");
    }
}
