//! End-to-end integrity proof: seeded latent corruption, transient
//! faults, and concurrent disk failure injected through
//! [`FaultyBackend`]; a scrub pass must find and repair **every**
//! injected error, the whole array must sweep bit-exact afterwards,
//! and the parity invariants must hold. Also proven here: a stopped
//! (crashed) scrub resumes at its persisted cursor across a real
//! close/reopen, repair load spreads evenly over the surviving disks
//! (the declustering property: each repair touches `k-1` of the
//! `v-1` survivors), torn multi-unit writes self-heal to a
//! parity-consistent old-or-new state, and the health monitor
//! auto-fails a decaying disk so a rebuild can restore redundancy.

use pdl_core::{DoubleParityLayout, RingLayout};
use pdl_store::{
    fill_pattern, open_file_store, Backend, BlockStore, Event, EventSink, FaultConfig,
    FaultyBackend, MemBackend, Rebuilder, ScrubConfig, StoreError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const UNIT: usize = 64;
const COPIES: usize = 2;
const SEED: u64 = 0xdecafbad;

fn xor_store(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    let mem = MemBackend::new(7 + 2, COPIES * layout.size(), UNIT);
    BlockStore::new(layout, FaultyBackend::new(mem, cfg)).unwrap()
}

fn pq_store(cfg: FaultConfig) -> BlockStore<FaultyBackend<MemBackend>> {
    let dp = DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
    let mem = MemBackend::new(9 + 2, COPIES * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp, FaultyBackend::new(mem, cfg)).unwrap()
}

/// Writes the deterministic pattern to every block (shadow image is
/// recomputable from `fill_pattern`).
fn fill<B: Backend>(store: &BlockStore<B>, salt: u64) {
    let mut buf = vec![0u8; UNIT];
    for addr in 0..store.blocks() {
        fill_pattern(addr, salt, &mut buf);
        store.write_block(addr, &buf).unwrap();
    }
}

/// Asserts every block reads back bit-exact against the pattern.
fn sweep<B: Backend>(store: &BlockStore<B>, salt: u64, ctx: &str) {
    let mut got = vec![0u8; UNIT];
    let mut want = vec![0u8; UNIT];
    for addr in 0..store.blocks() {
        store.read_block(addr, &mut got).unwrap_or_else(|e| panic!("[{ctx}] block {addr}: {e}"));
        fill_pattern(addr, salt, &mut want);
        assert_eq!(got, want, "[{ctx}] block {addr} not bit-exact");
    }
}

/// Counts `ChecksumRepair` events so tests can assert every injected
/// corruption produced a repair.
#[derive(Default)]
struct RepairCounter {
    checksum: AtomicU64,
    auto_failed: AtomicU64,
}

impl EventSink for RepairCounter {
    fn record(&self, ev: &Event) {
        match ev {
            Event::ChecksumRepair { .. } => {
                self.checksum.fetch_add(1, Ordering::Relaxed);
            }
            Event::DiskAutoFailed { .. } => {
                self.auto_failed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// The flagship XOR proof: transient faults stay armed the whole
/// time, a batch of latent corruptions lands on one disk (one per
/// stripe — XOR repairs single erasures), and a single scrub pass
/// must repair every one of them, leave the array bit-exact, and
/// leave parity consistent.
#[test]
fn scrub_repairs_every_injected_latent_error_xor() {
    let cfg = FaultConfig { transient_rate: 0.002, ..FaultConfig::quiet(SEED) };
    let store = xor_store(cfg);
    let sink = Arc::new(RepairCounter::default());
    store.set_event_sink(Some(sink.clone()));
    fill(&store, SEED);

    // Latent errors: corrupt every 3rd unit of one mapped disk behind
    // the store's back (silent — the write reported success).
    let pd = store.physical_disk(2);
    let units = store.backend().units_per_disk();
    for off in (0..units).step_by(3) {
        store.backend().corrupt_unit(pd, off).unwrap();
    }
    let injected = store.backend().corruptions().len() as u64;
    assert!(injected > 10, "seed must inject a meaningful batch, got {injected}");

    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert!(report.completed);
    assert_eq!(
        report.checksum_repairs, injected,
        "[seed {SEED:#x}] scrub must repair exactly the injected corruptions"
    );
    assert_eq!(sink.checksum.load(Ordering::Relaxed), injected, "one repair event per corruption");
    assert!(
        store.backend().injected_transients() > 0,
        "[seed {SEED:#x}] the transient schedule must actually have fired"
    );
    sweep(&store, SEED, "xor post-scrub");
    store.verify_parity().unwrap();
    // A second pass finds a clean array.
    let again = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!((again.checksum_repairs, again.parity_repairs), (0, 0));
    assert_eq!(store.stats().integrity.scrub_passes, 2);
}

/// The combined P+Q proof: latent corruption on one disk **and** a
/// concurrent whole-disk failure on another. Every repair decode now
/// needs both erasures filled (the failed disk plus the corrupt
/// unit), which only double parity can do — and the scrub must still
/// repair every injected error while the array is degraded.
#[test]
fn scrub_repairs_latent_errors_while_degraded_pq() {
    let cfg = FaultConfig { transient_rate: 0.002, ..FaultConfig::quiet(SEED ^ 0xff) };
    let store = pq_store(cfg);
    fill(&store, SEED);

    let pd = store.physical_disk(1);
    let units = store.backend().units_per_disk();
    for off in (0..units).step_by(4) {
        store.backend().corrupt_unit(pd, off).unwrap();
    }
    let injected = store.backend().corruptions().len() as u64;
    // The concurrent failure: a different disk dies outright (medium
    // wiped so nothing can silently read through to stale bytes).
    store.backend().wipe_disk(store.physical_disk(5)).unwrap();
    store.fail_disk(5).unwrap();

    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert!(report.completed);
    assert_eq!(
        report.checksum_repairs, injected,
        "degraded scrub must still repair every injected corruption"
    );
    sweep(&store, SEED, "pq degraded post-scrub");

    // Rebuild restores redundancy; the healthy array verifies.
    Rebuilder::default().rebuild(&store, 9).unwrap();
    sweep(&store, SEED, "pq post-rebuild");
    store.verify_parity().unwrap();
}

/// Repair load balance: scrubbing an array whose latent errors all
/// sit on one disk spreads the decode traffic over the survivors —
/// each stripe repair reads its `k-1` surviving units, and parity
/// declustering spreads those across the `v-1` surviving disks. The
/// per-disk read deltas of the scan must come out near-uniform.
#[test]
fn scrub_repair_reads_are_declustered() {
    let store = xor_store(FaultConfig::quiet(SEED));
    fill(&store, SEED);
    let pd = store.physical_disk(0);
    let units = store.backend().units_per_disk();
    for off in 0..units {
        store.backend().corrupt_unit(pd, off).unwrap();
    }
    let before: Vec<u64> =
        (0..store.v()).map(|d| store.backend().read_count(store.physical_disk(d))).collect();
    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!(report.checksum_repairs, units as u64, "whole disk repaired");
    let deltas: Vec<u64> = (0..store.v())
        .map(|d| store.backend().read_count(store.physical_disk(d)) - before[d])
        .collect();
    // Every live unit is read exactly once by the scan (the decodes
    // reuse those reads), so the load is uniform across disks — the
    // balanced-repair claim the declustered layout exists to make.
    let (min, max) = (deltas.iter().min().unwrap(), deltas.iter().max().unwrap());
    assert!(
        *max <= min + min / 4 + 2,
        "scrub read load skewed across disks: {deltas:?} (min {min}, max {max})"
    );
    sweep(&store, SEED, "balance post-scrub");
    store.verify_parity().unwrap();
}

/// Crash-resume proof on a real file store: a background scrub is
/// stopped mid-pass (its cursor checkpoints into `store.json` v4),
/// the store is closed and reopened, and the next pass must resume
/// from the persisted cursor — not restart — and still repair every
/// remaining corruption.
#[test]
fn crashed_scrub_resumes_at_persisted_cursor() {
    let dir = std::env::temp_dir().join(format!("pdl-scrub-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = RingLayout::for_v_k(7, 3).layout().clone();
    {
        let store = pdl_store::create_file_store(&dir, layout, UNIT, COPIES, 1).unwrap();
        fill(&store, SEED);
        store.flush().unwrap();
        // Latent errors through the backend (no checksum updates).
        let pd = store.physical_disk(3);
        let mut buf = vec![0u8; UNIT];
        for off in (0..store.backend().units_per_disk()).step_by(2) {
            store.backend().read_unit(pd, off, &mut buf).unwrap();
            buf[off % UNIT] ^= 0xA5;
            store.backend().write_unit(pd, off, &buf).unwrap();
        }

        // Scrub slowly in the background, checkpointing every few
        // stripes, and "crash" (stop) partway through the pass.
        let store = Arc::new(store);
        let handle = store
            .start_scrub(ScrubConfig { stripes_per_step: 2, sleep_us: 300, checkpoint_stripes: 2 })
            .unwrap();
        while store.stats().integrity.scrub_cursor < 8 {
            std::thread::yield_now();
        }
        handle.stop();
        let partial = handle.join().unwrap();
        assert!(!partial.completed, "the pass must have been interrupted");
        assert!(partial.stripes > 0, "the pass must have made progress");
    }

    // Reopen: the persisted v4 cursor comes back…
    let store = open_file_store(&dir).unwrap();
    let resumed_at = store.stats().integrity.scrub_cursor;
    assert!(resumed_at >= 8, "persisted cursor survives reopen, got {resumed_at}");
    // …and the next pass resumes there instead of restarting.
    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!(report.resumed_from, resumed_at);
    assert!(report.completed);
    let total = (COPIES * RingLayout::for_v_k(7, 3).layout().stripes().len()) as u64;
    assert_eq!(report.stripes, total - resumed_at, "only the unscanned tail is walked");
    // One more full pass from zero proves the whole array is clean.
    let clean = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!((clean.checksum_repairs, clean.parity_repairs), (0, 0));
    sweep(&store, SEED, "post-resume");
    store.verify_parity().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn-write crash window: a multi-unit write that lands only a
/// prefix (then fails non-transiently) must leave the array
/// *repairable* — after a scrub pass, parity is consistent and every
/// block reads as either its old or its new contents, never garbage.
#[test]
fn torn_writes_self_heal_to_old_or_new() {
    let store = xor_store(FaultConfig::quiet(SEED));
    fill(&store, SEED);
    store.backend().set_armed(true);

    // A spanning write torn by force: every data-path call fails
    // transiently zero times, but we arm the torn fault by writing
    // through a config with torn_rate = 1 — instead, use fail_next to
    // guarantee the *first* backend call of the span errors after the
    // earlier calls landed. Write the span one block at a time with a
    // forced failure in the middle: block i+1's write dies, blocks
    // before it committed, blocks after it were never attempted.
    let salt_new = SEED ^ 0x1111;
    let span_at = 10usize;
    let span_len = 6usize;
    let mut new_block = vec![0u8; UNIT];
    let mut wrote: Vec<bool> = Vec::new();
    for (i, addr) in (span_at..span_at + span_len).enumerate() {
        if i == 3 {
            // Three failed calls exhaust the retry budget (3 retries),
            // so this write genuinely fails through the retry layer.
            store.backend().fail_next(4);
        }
        fill_pattern(addr, salt_new, &mut new_block);
        let res = store.write_block(addr, &new_block);
        wrote.push(res.is_ok());
    }
    assert!(wrote.contains(&false), "the forced fault must fail at least one write");
    assert!(store.backend().injected_transients() >= 4);

    // Scrub re-establishes parity consistency over whatever landed.
    store.scrub(&ScrubConfig::default()).unwrap();
    store.verify_parity().unwrap();
    let mut got = vec![0u8; UNIT];
    let mut old = vec![0u8; UNIT];
    let mut new = vec![0u8; UNIT];
    for (i, addr) in (span_at..span_at + span_len).enumerate() {
        store.read_block(addr, &mut got).unwrap();
        fill_pattern(addr, SEED, &mut old);
        fill_pattern(addr, salt_new, &mut new);
        if wrote[i] {
            assert_eq!(got, new, "acknowledged write must read back new");
        } else {
            assert!(got == old || got == new, "failed write must read old-or-new, block {addr}");
        }
    }
}

/// Health auto-fail: a disk that keeps producing checksum repairs
/// crosses the configured threshold, is automatically failed (event +
/// stats), and a rebuild onto a spare restores full redundancy.
#[test]
fn health_monitor_auto_fails_decaying_disk_and_rebuild_recovers() {
    let store = xor_store(FaultConfig::quiet(SEED));
    let sink = Arc::new(RepairCounter::default());
    store.set_event_sink(Some(sink.clone()));
    store.set_health_threshold(8);
    fill(&store, SEED);

    // A decaying medium: every unit of logical disk 4 rots.
    let pd = store.physical_disk(4);
    for off in 0..store.backend().units_per_disk() {
        store.backend().corrupt_unit(pd, off).unwrap();
    }

    // Client reads hit the rot, read-repair it, and the per-repair
    // health score climbs past the threshold — at which point the
    // store takes the disk out of service on its own.
    sweep(&store, SEED, "reads during decay");
    assert_eq!(sink.auto_failed.load(Ordering::Relaxed), 1, "exactly one auto-fail event");
    let health = store.stats().integrity.disk_health;
    let h = health.iter().find(|h| h.disk == pd).expect("decaying disk tracked");
    assert!(h.auto_failed, "stats mark the disk auto-failed");
    assert!(h.repairs >= 8, "repair score crossed the threshold, got {}", h.repairs);
    assert!(matches!(store.fail_disk(4), Err(StoreError::AlreadyFailed(4))));

    // The array serves degraded reads bit-exact, and a rebuild onto
    // the spare restores redundancy.
    sweep(&store, SEED, "degraded after auto-fail");
    Rebuilder::default().rebuild(&store, 7).unwrap();
    sweep(&store, SEED, "post-rebuild");
    store.verify_parity().unwrap();
    // The replacement spare now serves reads with recorded checksums:
    // a clean scrub confirms end-to-end integrity survived the cycle.
    let report = store.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!(report.checksum_repairs, 0, "rebuilt data carries fresh checksums");
    store.verify_parity().unwrap();
}
