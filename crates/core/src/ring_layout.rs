//! Ring-based layouts and disk removal (Section 3.1, Theorems 8 & 9).
//!
//! A *ring-based layout* places one copy of a ring design so that the
//! parity unit of stripe `(x, y)` sits on disk `x`; since each disk `x`
//! is the parity target of exactly the `v−1` stripes `(x, ·)`, parity is
//! perfectly balanced with **no replication** — already an improvement
//! over the k-copy construction of Section 1.

use crate::hg::OffsetAllocator;
use crate::layout::{Layout, Stripe, StripeUnit};
use pdl_design::RingDesign;
use pdl_flow::hopcroft_karp;
use std::fmt;

/// A stripe under construction: units as `(old_disk, offset)` plus the
/// parity slot. Shared by the ring layout, disk removal, and the
/// stairway transformation (which re-maps offsets into pieces).
pub(crate) type ProtoStripe = (Vec<(usize, usize)>, usize);

/// Builds one copy of `design` as proto-stripes, optionally with one disk
/// removed per Theorem 8: units on the removed disk are dropped and the
/// parity of stripes `(removed, y)` moves to the tuple's `g_1`-th element
/// (disk `removed + y(g_1 − g_0)`).
pub(crate) fn ring_copy_stripes(design: &RingDesign, removed: Option<usize>) -> Vec<ProtoStripe> {
    let v = design.v();
    let mut alloc = OffsetAllocator::new(v);
    let mut out = Vec::with_capacity(design.b());
    for idx in 0..design.b() {
        let (x, y) = design.index_pair(idx);
        let block = design.block(x, y);
        let mut units = Vec::with_capacity(block.len());
        let mut parity_slot = usize::MAX;
        for (pos, &disk) in block.iter().enumerate() {
            if Some(disk) == removed {
                continue;
            }
            let parity_pos = if Some(x) == removed { 1 } else { 0 };
            if pos == parity_pos {
                parity_slot = units.len();
            }
            let u = alloc.take(disk);
            units.push((disk, u.offset as usize));
        }
        debug_assert_ne!(parity_slot, usize::MAX, "parity target must survive");
        out.push((units, parity_slot));
    }
    out
}

/// A ring-based layout: one copy of a ring design, size `k(v−1)`,
/// perfectly balanced parity and reconstruction workload.
#[derive(Clone, Debug)]
pub struct RingLayout {
    design: RingDesign,
    layout: Layout,
}

impl RingLayout {
    /// Builds the ring-based layout for `design`.
    pub fn new(design: RingDesign) -> Self {
        let v = design.v();
        let k = design.k();
        let stripes = ring_copy_stripes(&design, None)
            .into_iter()
            .map(|(units, p)| {
                Stripe::new(units.into_iter().map(|(d, o)| StripeUnit::new(d, o)).collect(), p)
            })
            .collect();
        let layout = Layout::from_stripes(v, k * (v - 1), stripes)
            .expect("ring-based construction is always valid");
        RingLayout { design, layout }
    }

    /// Convenience: the ring layout for the Lemma 3 ring on `v` with `k`
    /// generators. Panics if `k > M(v)` (Theorem 2).
    pub fn for_v_k(v: usize, k: usize) -> Self {
        RingLayout::new(RingDesign::for_v_k(v, k))
    }

    /// The underlying ring design.
    pub fn design(&self) -> &RingDesign {
        &self.design
    }

    /// The concrete layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Stripe size `k`.
    pub fn k(&self) -> usize {
        self.design.k()
    }

    /// Theorem 8: the layout on `v−1` disks obtained by deleting disk
    /// `removed`, reassigning its parity so balance stays perfect
    /// (every remaining disk ends with exactly `v` parity units).
    pub fn remove_disk(&self, removed: usize) -> Layout {
        let v = self.design.v();
        assert!(removed < v, "disk out of range");
        let renumber = |d: usize| if d > removed { d - 1 } else { d };
        let stripes = ring_copy_stripes(&self.design, Some(removed))
            .into_iter()
            .map(|(units, p)| {
                Stripe::new(
                    units.into_iter().map(|(d, o)| StripeUnit::new(renumber(d), o)).collect(),
                    p,
                )
            })
            .collect();
        Layout::from_stripes(v - 1, self.k() * (v - 1), stripes)
            .expect("Theorem 8 removal is always valid")
    }

    /// Theorem 9: the layout on `v−i` disks obtained by deleting the `i`
    /// disks in `removed`, with orphaned parity units (those whose
    /// Theorem-8 fallback disk was also removed) re-matched to distinct
    /// surviving disks. Succeeds whenever the paper's condition
    /// `i(i−1) ≤ k−i` holds (and often beyond it).
    pub fn remove_disks(&self, removed: &[usize]) -> Result<Layout, RemovalError> {
        let v = self.design.v();
        let k = self.k();
        let i = removed.len();
        let mut is_removed = vec![false; v];
        for &d in removed {
            assert!(d < v, "disk out of range");
            assert!(!is_removed[d], "duplicate disk {d} in removal set");
            is_removed[d] = true;
        }
        if i == 0 {
            return Ok(self.layout.clone());
        }
        assert!(i < k, "cannot remove i >= k disks (stripes would vanish)");

        // Pass 1: build surviving units and classify parity.
        let mut alloc = OffsetAllocator::new(v);
        let mut protos: Vec<(Vec<StripeUnit>, Vec<usize>, Option<usize>)> =
            Vec::with_capacity(self.design.b());
        let mut orphans: Vec<usize> = Vec::new(); // stripe indices needing matching
        for idx in 0..self.design.b() {
            let (x, y) = self.design.index_pair(idx);
            let block = self.design.block(x, y);
            let mut units = Vec::with_capacity(k);
            let mut disks = Vec::with_capacity(k);
            for &disk in block.iter().filter(|&&d| !is_removed[d]) {
                units.push(alloc.take(disk));
                disks.push(disk);
            }
            let parity_disk = if !is_removed[x] {
                Some(x)
            } else {
                // Theorem 8 fallback: the g1-th element.
                let fb = block[1];
                if is_removed[fb] {
                    None // orphaned
                } else {
                    Some(fb)
                }
            };
            if parity_disk.is_none() {
                orphans.push(idx);
            }
            protos.push((units, disks, parity_disk));
        }

        // Pass 2: match orphans to distinct surviving disks within their
        // stripes (the paper's i(i−1) ≤ k−i greedy, done optimally).
        let surviving: Vec<usize> = (0..v).filter(|&d| !is_removed[d]).collect();
        let disk_pos: Vec<usize> = {
            let mut m = vec![usize::MAX; v];
            for (j, &d) in surviving.iter().enumerate() {
                m[d] = j;
            }
            m
        };
        let adj: Vec<Vec<usize>> = orphans
            .iter()
            .map(|&idx| protos[idx].1.iter().map(|&d| disk_pos[d]).collect())
            .collect();
        let matching = hopcroft_karp(orphans.len(), surviving.len(), &adj);
        let matched = matching.iter().flatten().count();
        if matched < orphans.len() {
            return Err(RemovalError::OrphanMatchingFailed { orphans: orphans.len(), matched });
        }
        for (oi, &idx) in orphans.iter().enumerate() {
            protos[idx].2 = Some(surviving[matching[oi].unwrap()]);
        }

        // Pass 3: assemble with renumbered disks.
        let renumber = &disk_pos;
        let stripes = protos
            .into_iter()
            .map(|(units, disks, parity_disk)| {
                let pd = parity_disk.expect("all parities assigned");
                let slot = disks.iter().position(|&d| d == pd).expect("parity disk in stripe");
                Stripe::new(
                    units
                        .into_iter()
                        .map(|u| StripeUnit::new(renumber[u.disk as usize], u.offset as usize))
                        .collect(),
                    slot,
                )
            })
            .collect();
        Layout::from_stripes(v - i, k * (v - 1), stripes)
            .map_err(|e| RemovalError::InvalidLayout(e.to_string()))
    }
}

/// Failures of the Theorem 9 multi-disk removal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemovalError {
    /// Not all orphaned parity units could be matched to distinct disks.
    OrphanMatchingFailed {
        /// Orphans needing placement.
        orphans: usize,
        /// Matching size achieved.
        matched: usize,
    },
    /// The resulting stripe set failed layout validation (internal error).
    InvalidLayout(String),
}

impl fmt::Display for RemovalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemovalError::OrphanMatchingFailed { orphans, matched } => {
                write!(f, "only {matched} of {orphans} orphaned parity units could be placed")
            }
            RemovalError::InvalidLayout(e) => write!(f, "removal produced invalid layout: {e}"),
        }
    }
}

impl std::error::Error for RemovalError {}

/// Largest `i` satisfying the paper's Theorem 9 safety condition
/// `i(i−1) ≤ k−i` (≈ √k).
pub fn max_safe_removals(k: usize) -> usize {
    (0..=k).take_while(|&i| i * i <= k).last().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{parity_counts, QualityReport};

    #[test]
    fn ring_layout_size_and_balance() {
        for (v, k) in [(5usize, 3usize), (7, 4), (8, 3), (9, 5), (13, 4)] {
            let rl = RingLayout::for_v_k(v, k);
            let l = rl.layout();
            assert_eq!(l.size(), k * (v - 1), "size = k(v-1)");
            let r = QualityReport::measure(l);
            assert!(r.parity_balanced(), "v={v} k={k}");
            assert!(r.reconstruction_balanced(), "v={v} k={k}");
            // parity overhead exactly 1/k; workload (k-1)/(v-1)
            assert!((r.parity_overhead.0 - 1.0 / k as f64).abs() < 1e-12);
            assert!(
                (r.reconstruction_workload.0 - (k as f64 - 1.0) / (v as f64 - 1.0)).abs() < 1e-12
            );
            // every disk holds exactly v-1 parity units
            assert!(parity_counts(l).iter().all(|&c| c == v - 1));
        }
    }

    #[test]
    fn ring_layout_on_composite_v() {
        // v = 15, M(v) = 3: single-copy perfectly balanced layout exists.
        let rl = RingLayout::for_v_k(15, 3);
        let r = QualityReport::measure(rl.layout());
        assert!(r.parity_balanced());
        assert!(r.reconstruction_balanced());
        assert_eq!(rl.layout().size(), 3 * 14);
    }

    #[test]
    fn theorem8_metrics() {
        for (v, k) in [(5usize, 3usize), (8, 4), (9, 3), (13, 5)] {
            let rl = RingLayout::for_v_k(v, k);
            for removed in [0, v / 2, v - 1] {
                let l = rl.remove_disk(removed);
                assert_eq!(l.v(), v - 1);
                assert_eq!(l.size(), k * (v - 1), "size still k(v-1)");
                let (smin, smax) = l.stripe_size_range();
                assert_eq!((smin, smax), (k - 1, k), "stripes of size k and k-1");
                // every disk has exactly v parity units → overhead (1/k)(v/(v-1))
                assert!(parity_counts(&l).iter().all(|&c| c == v), "v={v} k={k}");
                let r = QualityReport::measure(&l);
                assert!(
                    (r.parity_overhead.1 - (v as f64) / (k as f64 * (v as f64 - 1.0))).abs()
                        < 1e-12
                );
                // reconstruction workload still exactly (k-1)/(v-1)
                assert!(
                    (r.reconstruction_workload.0 - (k as f64 - 1.0) / (v as f64 - 1.0)).abs()
                        < 1e-12
                );
                assert!(r.reconstruction_balanced());
            }
        }
    }

    #[test]
    fn theorem9_remove_two() {
        // k = 5 allows i = 2 (2·1 ≤ 5−2).
        let rl = RingLayout::for_v_k(11, 5);
        let l = rl.remove_disks(&[2, 7]).unwrap();
        assert_eq!(l.v(), 9);
        assert_eq!(l.size(), 5 * 10);
        let (smin, smax) = l.stripe_size_range();
        assert!(smin >= 3 && smax == 5);
        // parity counts in {v+i-1, v+i} = {12, 13}
        let counts = parity_counts(&l);
        assert!(counts.iter().all(|&c| c == 12 || c == 13), "{counts:?}");
        let r = QualityReport::measure(&l);
        // workload unchanged: (k-1)/(v-1) = 4/10
        assert!((r.reconstruction_workload.1 - 0.4).abs() < 1e-12);
        assert!(r.reconstruction_balanced());
    }

    #[test]
    fn theorem9_matches_theorem8_for_single_disk() {
        let rl = RingLayout::for_v_k(7, 3);
        let a = rl.remove_disk(3);
        let b = rl.remove_disks(&[3]).unwrap();
        assert_eq!(parity_counts(&a), parity_counts(&b));
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn theorem9_overhead_bounds() {
        // Paper: parity overhead between (v+i-1)/(k(v-1)) and (v+i)/(k(v-1)).
        let (v, k) = (13usize, 6usize);
        let rl = RingLayout::for_v_k(v, k);
        let i = 2;
        let l = rl.remove_disks(&[0, 5]).unwrap();
        let r = QualityReport::measure(&l);
        let lo = (v as f64 + i as f64 - 1.0) / (k as f64 * (v as f64 - 1.0));
        let hi = (v as f64 + i as f64) / (k as f64 * (v as f64 - 1.0));
        assert!(r.parity_overhead.0 >= lo - 1e-12);
        assert!(r.parity_overhead.1 <= hi + 1e-12);
    }

    #[test]
    fn max_safe_removals_examples() {
        assert_eq!(max_safe_removals(4), 2);
        assert_eq!(max_safe_removals(9), 3);
        assert_eq!(max_safe_removals(8), 2);
        assert_eq!(max_safe_removals(16), 4);
        assert_eq!(max_safe_removals(2), 1);
    }

    #[test]
    fn remove_zero_disks_is_identity() {
        let rl = RingLayout::for_v_k(5, 3);
        let l = rl.remove_disks(&[]).unwrap();
        assert_eq!(l.v(), 5);
        assert_eq!(parity_counts(&l), parity_counts(rl.layout()));
    }

    #[test]
    fn g0_position_is_parity_disk() {
        // Parity of stripe (x,y) must lie on disk x.
        let rl = RingLayout::for_v_k(9, 4);
        for idx in 0..rl.design().b() {
            let (x, _) = rl.design().index_pair(idx);
            let stripe = &rl.layout().stripes()[idx];
            assert_eq!(stripe.parity_unit().disk as usize, x);
        }
    }
}
