//! Heterogeneous arrays — disks of different sizes (the paper's final
//! remark on Theorem 14: "Another modification even allows us to address
//! the case where the disks may be of different sizes").
//!
//! The flow formulation is unchanged: `L(d) = Σ_{s∋d} c_s/k_s` simply
//! grows with a disk's stripe membership, and the ⌊L⌋/⌈L⌉ guarantee
//! still holds per disk. What changes is the data model: units are
//! validated against per-disk capacities instead of a rectangle.

use crate::layout::{LayoutError, StripeUnit};
use crate::parity_assign::AssignError;
use pdl_design::RingDesign;
use pdl_flow::{assign_parity_two_phase, ParityInstance};

/// A validated array with per-disk capacities and flow-assigned parity.
#[derive(Clone, Debug)]
pub struct HeteroArray {
    sizes: Vec<usize>,
    stripes: Vec<Vec<StripeUnit>>,
    parity: Vec<usize>,
}

impl HeteroArray {
    /// Builds and validates: every unit within its disk's capacity,
    /// every `(disk, offset)` covered exactly once, at most one unit per
    /// disk per stripe; parity is then balanced by the Section 4 flow.
    pub fn new(
        sizes: Vec<usize>,
        stripes: Vec<Vec<StripeUnit>>,
    ) -> Result<HeteroArray, HeteroError> {
        let v = sizes.len();
        let offsets: Vec<usize> = sizes
            .iter()
            .scan(0usize, |acc, &s| {
                let base = *acc;
                *acc += s;
                Some(base)
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let mut covered = vec![false; total];
        for (si, stripe) in stripes.iter().enumerate() {
            if stripe.is_empty() {
                return Err(HeteroError::Invalid(LayoutError::EmptyStripe { stripe: si }));
            }
            let mut disks: Vec<u32> = Vec::with_capacity(stripe.len());
            for &u in stripe {
                if u.disk as usize >= v || u.offset as usize >= sizes[u.disk as usize] {
                    return Err(HeteroError::Invalid(LayoutError::UnitOutOfRange {
                        stripe: si,
                        unit: u,
                    }));
                }
                if disks.contains(&u.disk) {
                    return Err(HeteroError::Invalid(LayoutError::TwoUnitsOneDisk {
                        stripe: si,
                        disk: u.disk as usize,
                    }));
                }
                disks.push(u.disk);
                let idx = offsets[u.disk as usize] + u.offset as usize;
                if covered[idx] {
                    return Err(HeteroError::Invalid(LayoutError::DuplicateCoverage { unit: u }));
                }
                covered[idx] = true;
            }
        }
        if let Some(idx) = covered.iter().position(|&c| !c) {
            let disk = offsets.iter().rposition(|&o| o <= idx).unwrap();
            return Err(HeteroError::Invalid(LayoutError::MissingCoverage {
                unit: StripeUnit::new(disk, idx - offsets[disk]),
            }));
        }
        let inst = ParityInstance {
            v,
            stripes: stripes.iter().map(|s| s.iter().map(|u| u.disk as usize).collect()).collect(),
        };
        let parity =
            assign_parity_two_phase(&inst).ok_or(HeteroError::Assign(AssignError::Infeasible))?;
        Ok(HeteroArray { sizes, stripes, parity })
    }

    /// Per-disk capacities.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of disks.
    pub fn v(&self) -> usize {
        self.sizes.len()
    }

    /// Number of stripes.
    pub fn b(&self) -> usize {
        self.stripes.len()
    }

    /// The parity unit of stripe `s`.
    pub fn parity_unit(&self, s: usize) -> StripeUnit {
        self.stripes[s][self.parity[s]]
    }

    /// Parity units per disk — Theorem 14 guarantees ⌊L(d)⌋/⌈L(d)⌉.
    pub fn parity_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.v()];
        for s in 0..self.b() {
            counts[self.parity_unit(s).disk as usize] += 1;
        }
        counts
    }

    /// The loads `L(d)`.
    pub fn loads(&self) -> Vec<f64> {
        let mut l = vec![0f64; self.v()];
        for stripe in &self.stripes {
            for u in stripe {
                l[u.disk as usize] += 1.0 / stripe.len() as f64;
            }
        }
        l
    }

    /// Parity overhead per disk, relative to its own capacity.
    pub fn parity_overheads(&self) -> Vec<f64> {
        self.parity_counts().iter().zip(&self.sizes).map(|(&c, &s)| c as f64 / s as f64).collect()
    }

    /// Fraction of disk `d` read while reconstructing failed disk `f`.
    pub fn reconstruction_workload(&self, f: usize, d: usize) -> f64 {
        assert_ne!(f, d);
        let crossing = self
            .stripes
            .iter()
            .filter(|s| {
                s.iter().any(|u| u.disk as usize == f) && s.iter().any(|u| u.disk as usize == d)
            })
            .count();
        crossing as f64 / self.sizes[d] as f64
    }
}

/// Errors building heterogeneous arrays.
#[derive(Debug)]
pub enum HeteroError {
    /// Structural validation failed.
    Invalid(LayoutError),
    /// Parity assignment failed (cannot happen for valid inputs).
    Assign(AssignError),
}

impl std::fmt::Display for HeteroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeteroError::Invalid(e) => write!(f, "invalid hetero array: {e}"),
            HeteroError::Assign(e) => write!(f, "parity assignment failed: {e}"),
        }
    }
}

impl std::error::Error for HeteroError {}

/// A realistic mixed-size array: a ring layout across all `v` disks,
/// plus extra ring-layout copies over the first `w` (larger) disks,
/// stacked at higher offsets. The first `w` disks end up with
/// `(1 + extra)·k(w−1)`-ish capacity… precisely: base `k(v−1)` plus
/// `extra · k2(w−1)` units each.
pub fn mixed_size_array(
    v: usize,
    k: usize,
    w: usize,
    k2: usize,
    extra: usize,
) -> Result<HeteroArray, HeteroError> {
    assert!(w >= 2 && w <= v && extra >= 1);
    let base = RingDesign::for_v_k(v, k);
    let small = RingDesign::for_v_k(w, k2);
    let base_size = k * (v - 1);
    let small_size = k2 * (w - 1);
    let mut stripes: Vec<Vec<StripeUnit>> = Vec::new();
    for stripe in crate::ring_layout::ring_copy_stripes(&base, None) {
        stripes.push(stripe.0.iter().map(|&(d, o)| StripeUnit::new(d, o)).collect());
    }
    for copy in 0..extra {
        let shift = base_size + copy * small_size;
        for stripe in crate::ring_layout::ring_copy_stripes(&small, None) {
            stripes.push(stripe.0.iter().map(|&(d, o)| StripeUnit::new(d, o + shift)).collect());
        }
    }
    let sizes: Vec<usize> =
        (0..v).map(|d| base_size + if d < w { extra * small_size } else { 0 }).collect();
    HeteroArray::new(sizes, stripes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_array_validates_and_balances() {
        // 9 disks (k=4), first 5 disks have 2 extra copies of a 5-disk
        // ring layout (k=3).
        let h = mixed_size_array(9, 4, 5, 3, 2).unwrap();
        assert_eq!(h.v(), 9);
        assert_eq!(h.sizes()[0], 4 * 8 + 2 * 3 * 4);
        assert_eq!(h.sizes()[8], 4 * 8);
        // Theorem 14 (hetero form): parity within floor/ceil of L(d).
        let loads = h.loads();
        for (d, &c) in h.parity_counts().iter().enumerate() {
            assert!(
                c as f64 >= loads[d].floor() - 1e-9 && c as f64 <= loads[d].ceil() + 1e-9,
                "disk {d}: {c} vs L={}",
                loads[d]
            );
        }
        // larger disks carry proportionally more parity
        assert!(h.parity_counts()[0] > h.parity_counts()[8]);
    }

    #[test]
    fn overheads_stay_near_one_over_k() {
        let h = mixed_size_array(8, 3, 4, 3, 1).unwrap();
        for &o in &h.parity_overheads() {
            assert!((o - 1.0 / 3.0).abs() < 0.1, "overhead {o}");
        }
    }

    #[test]
    fn reconstruction_workload_reflects_shared_regions() {
        let h = mixed_size_array(9, 4, 5, 3, 2).unwrap();
        // two big disks share base + extra stripes; a big and a small
        // disk share only the base region
        let big_big = h.reconstruction_workload(0, 1);
        let big_small = h.reconstruction_workload(0, 8);
        assert!(big_big > 0.0 && big_small > 0.0);
        // disk 8's entire capacity is base stripes: the fraction of disk
        // 8 read for disk 0 equals the base-layout workload (k-1)/(v-1)
        assert!((big_small - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_validation_catches_gaps() {
        // sizes claim more capacity than stripes provide
        let stripes = vec![vec![StripeUnit::new(0, 0), StripeUnit::new(1, 0)]];
        let err = HeteroArray::new(vec![2, 1], stripes).unwrap_err();
        assert!(matches!(err, HeteroError::Invalid(LayoutError::MissingCoverage { .. })));
    }

    #[test]
    fn out_of_capacity_rejected() {
        let stripes = vec![vec![StripeUnit::new(0, 1), StripeUnit::new(1, 0)]];
        let err = HeteroArray::new(vec![1, 1], stripes).unwrap_err();
        assert!(matches!(err, HeteroError::Invalid(LayoutError::UnitOutOfRange { .. })));
    }
}
