//! The layout designer: one entry point that builds a concrete,
//! validated [`Layout`] for any `(method, v, k)` the library supports —
//! the programmatic face of the paper's feasibility story.

use crate::feasibility::{stairway_smallest_source, Method};
use crate::hg::{holland_gibson_layout, single_copy_layout};
use crate::layout::Layout;
use crate::parity_assign::{minimal_balanced_layout, StripePartition};
use crate::ring_layout::RingLayout;
use crate::stairway::stairway_layout;
use pdl_algebra::nt::{is_prime_power, min_prime_power_factor};
use pdl_design::{
    complete_design, steiner_triple_system, sts_exists, theorem4_design, theorem5_design,
    theorem6_design, BlockDesign,
};

/// The best BIBD our Section 2 + Steiner constructions produce at
/// `(v, k)` (smallest `b`), or `None` when none applies.
pub fn best_bibd(v: usize, k: usize) -> Option<BlockDesign> {
    if k < 2 || k > v {
        return None;
    }
    let mut best: Option<BlockDesign> = None;
    let mut consider = |d: BlockDesign| {
        if best.as_ref().is_none_or(|cur| d.b() < cur.b()) {
            best = Some(d);
        }
    };
    if is_prime_power(v as u64) {
        consider(theorem4_design(v, k).design);
        consider(theorem5_design(v, k).design);
        if is_prime_power(k as u64) && pdl_design::log_exact(v as u64, k as u64).is_some() {
            consider(theorem6_design(v, k).design);
        }
    }
    if k == 3 && sts_exists(v) {
        consider(steiner_triple_system(v).design);
    }
    best
}

/// Builds the concrete layout a [`Method`] promises at `(v, k)`, or
/// `None` when the method is inapplicable. The result's size matches
/// [`crate::feasibility::layout_size`] exactly (asserted in tests).
///
/// `max_blocks` caps complete-design materialization (they explode
/// combinatorially — that is the paper's point).
pub fn build_layout(method: Method, v: usize, k: usize, max_blocks: usize) -> Option<Layout> {
    if v < 2 || k < 2 || k > v {
        return None;
    }
    match method {
        Method::CompleteHG => {
            if pdl_design::binomial(v as u64, k as u64) > max_blocks as u128 {
                return None;
            }
            Some(holland_gibson_layout(&complete_design(v, k, max_blocks)))
        }
        Method::BibdHG => best_bibd(v, k).map(|d| holland_gibson_layout(&d)),
        Method::BibdLcmMinimal => {
            best_bibd(v, k).map(|d| minimal_balanced_layout(&d).expect("flow always feasible"))
        }
        Method::BibdSingleCopy => best_bibd(v, k).map(|d| {
            StripePartition::from_layout(&single_copy_layout(&d, 0))
                .assign_parity()
                .expect("flow always feasible")
        }),
        Method::RingBased => (k as u64 <= min_prime_power_factor(v as u64))
            .then(|| RingLayout::for_v_k(v, k).layout().clone()),
        Method::Stairway => {
            let (q, _) = stairway_smallest_source(v, k)?;
            let design = pdl_design::RingDesign::for_v_k(q, k);
            stairway_layout(&design, v).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::layout_size;
    use crate::metrics::QualityReport;

    #[test]
    fn built_sizes_match_closed_forms() {
        for v in [7usize, 9, 12, 13, 15, 16, 21, 25] {
            for k in 2..=5usize {
                if k > v {
                    continue;
                }
                for m in Method::ALL {
                    let built = build_layout(m, v, k, 100_000);
                    let predicted = layout_size(m, v as u64, k as u64);
                    match (built, predicted) {
                        (Some(l), Some(s)) => {
                            assert_eq!(l.size() as u128, s, "{} v={v} k={k}", m.name())
                        }
                        (None, None) => {}
                        (Some(l), None) => {
                            panic!(
                                "{} v={v} k={k}: built size {} but no closed form",
                                m.name(),
                                l.size()
                            )
                        }
                        (None, Some(s)) => {
                            // complete designs capped by max_blocks are the
                            // only legitimate build-refusals
                            assert_eq!(m, Method::CompleteHG, "v={v} k={k} size {s}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn every_built_layout_is_nearly_balanced() {
        for v in [9usize, 13, 15] {
            for m in Method::ALL {
                if let Some(l) = build_layout(m, v, 3, 100_000) {
                    let q = QualityReport::measure(&l);
                    assert!(q.parity_nearly_balanced(), "{} v={v}: {:?}", m.name(), q.parity_units);
                }
            }
        }
    }

    #[test]
    fn best_bibd_picks_smallest() {
        // v=9, k=3: Theorem 6 and STS(9) both give b=12.
        assert_eq!(best_bibd(9, 3).unwrap().b(), 12);
        // v=15, k=3: only STS applies → b=35.
        assert_eq!(best_bibd(15, 3).unwrap().b(), 35);
        // v=13, k=4: Theorem 5 wins with 39 < 52.
        assert_eq!(best_bibd(13, 4).unwrap().b(), 39);
        // v=14, k=4: nothing applies.
        assert!(best_bibd(14, 4).is_none());
    }

    #[test]
    fn inapplicable_methods_return_none() {
        assert!(build_layout(Method::RingBased, 30, 5, 1000).is_none());
        assert!(build_layout(Method::BibdHG, 14, 4, 1000).is_none());
        assert!(build_layout(Method::Stairway, 4, 4, 1000).is_none());
    }
}
