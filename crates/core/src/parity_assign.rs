//! Flow-based parity distribution (Section 4, Theorems 13–14 and
//! Corollaries 15–17).
//!
//! Given any partition of the array into stripes (each with at most one
//! unit per disk) *without* parity assigned, build the *parity assignment
//! graph* — source → stripes `[1,1]`, stripe → crossed disk `[0,1]`,
//! disk `d` → sink `[⌊L(d)⌋, ⌈L(d)⌉]` with `L(d) = Σ_{s ∋ d} c_s/k_s` —
//! and read an integral max flow back as the parity placement. Every
//! disk ends with `⌊L(d)⌋` or `⌈L(d)⌉` parity units: the best possible
//! balance, achieving perfection exactly when `v | b` (Corollary 17,
//! proving Holland & Gibson's lcm conjecture).

use crate::layout::{Layout, Stripe, StripeUnit};
use pdl_design::BlockDesign;
use pdl_flow::{max_flow_with_lower_bounds, BoundedEdge};
use std::fmt;

/// A stripe partition of the array with no parity assigned yet — the
/// input to the Section 4 method.
#[derive(Clone, Debug)]
pub struct StripePartition {
    v: usize,
    size: usize,
    stripes: Vec<Vec<StripeUnit>>,
}

/// Failures of flow-based assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// The flow problem was infeasible (cannot happen for valid
    /// partitions; kept for robustness).
    Infeasible,
    /// A stripe was asked for more distinguished units than it has.
    CountTooLarge {
        /// Offending stripe.
        stripe: usize,
        /// Units requested.
        requested: usize,
        /// Stripe size.
        size: usize,
    },
    /// The resulting layout failed validation (internal error).
    InvalidLayout(String),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::Infeasible => write!(f, "parity assignment flow is infeasible"),
            AssignError::CountTooLarge { stripe, requested, size } => {
                write!(f, "stripe {stripe} asked for {requested} units but has {size}")
            }
            AssignError::InvalidLayout(e) => write!(f, "assignment produced invalid layout: {e}"),
        }
    }
}

impl std::error::Error for AssignError {}

impl StripePartition {
    /// Builds a partition; validity (coverage, one-unit-per-disk) is
    /// checked when a [`Layout`] is produced.
    pub fn new(v: usize, size: usize, stripes: Vec<Vec<StripeUnit>>) -> Self {
        StripePartition { v, size, stripes }
    }

    /// Forgets the parity choice of an existing layout.
    pub fn from_layout(layout: &Layout) -> Self {
        StripePartition {
            v: layout.v(),
            size: layout.size(),
            stripes: layout.stripes().iter().map(|s| s.units().to_vec()).collect(),
        }
    }

    /// Number of disks.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Units per disk.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The stripes.
    pub fn stripes(&self) -> &[Vec<StripeUnit>] {
        &self.stripes
    }

    /// The parity load `L(d) = Σ_{s crossing d} c_s / k_s` of every disk,
    /// for per-stripe distinguished-unit counts `counts` (all 1 for plain
    /// parity).
    pub fn loads(&self, counts: &[usize]) -> Vec<f64> {
        assert_eq!(counts.len(), self.stripes.len());
        let mut l = vec![0f64; self.v];
        for (stripe, &c) in self.stripes.iter().zip(counts) {
            for u in stripe {
                l[u.disk as usize] += c as f64 / stripe.len() as f64;
            }
        }
        l
    }

    /// The generalized Theorem 14: choose `counts[s]` distinguished units
    /// in each stripe `s` so every disk carries `⌊L(d)⌋` or `⌈L(d)⌉` of
    /// them. Returns the chosen slots per stripe.
    pub fn assign_distinguished(&self, counts: &[usize]) -> Result<Vec<Vec<usize>>, AssignError> {
        assert_eq!(counts.len(), self.stripes.len());
        for (si, (stripe, &c)) in self.stripes.iter().zip(counts).enumerate() {
            if c > stripe.len() {
                return Err(AssignError::CountTooLarge {
                    stripe: si,
                    requested: c,
                    size: stripe.len(),
                });
            }
        }
        let b = self.stripes.len();
        let v = self.v;
        // Nodes: 0 = source, 1..=b stripes, b+1..=b+v disks, b+v+1 = sink.
        let (s, t) = (0usize, b + v + 1);
        let loads = self.loads(counts);
        let mut edges = Vec::new();
        let mut unit_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); b]; // (edge idx, slot)
        for (si, (stripe, &c)) in self.stripes.iter().zip(counts).enumerate() {
            edges.push(BoundedEdge { from: s, to: 1 + si, lower: c as i64, upper: c as i64 });
            for (slot, u) in stripe.iter().enumerate() {
                unit_edges[si].push((edges.len(), slot));
                edges.push(BoundedEdge {
                    from: 1 + si,
                    to: 1 + b + u.disk as usize,
                    lower: 0,
                    upper: 1,
                });
            }
        }
        for (d, &l) in loads.iter().enumerate() {
            // Guard against f64 noise: loads of exact integers must not
            // round to (n-1, n).
            let lo = (l + 1e-9).floor() as i64;
            let hi = (l - 1e-9).ceil() as i64;
            edges.push(BoundedEdge {
                from: 1 + b + d,
                to: t,
                lower: lo.min(hi),
                upper: lo.max(hi),
            });
        }
        let flow =
            max_flow_with_lower_bounds(t + 1, &edges, s, t).ok_or(AssignError::Infeasible)?;
        let total: i64 = counts.iter().map(|&c| c as i64).sum();
        if flow.value != total {
            return Err(AssignError::Infeasible);
        }
        Ok(unit_edges
            .iter()
            .map(|ue| {
                ue.iter()
                    .filter(|(ei, _)| flow.edge_flows[*ei] == 1)
                    .map(|&(_, slot)| slot)
                    .collect()
            })
            .collect())
    }

    /// Like [`assign_parity`](Self::assign_parity) but running the
    /// paper's literal two-phase G′ procedure (Theorem 13) instead of
    /// the generic lower-bound reduction. Same ⌊L⌋/⌈L⌉ guarantee;
    /// kept as an ablation target (see `bench_flow`).
    pub fn assign_parity_two_phase(&self) -> Result<Layout, AssignError> {
        let inst = pdl_flow::ParityInstance {
            v: self.v,
            stripes: self
                .stripes
                .iter()
                .map(|s| s.iter().map(|u| u.disk as usize).collect())
                .collect(),
        };
        let slots = pdl_flow::assign_parity_two_phase(&inst).ok_or(AssignError::Infeasible)?;
        let stripes = self
            .stripes
            .iter()
            .zip(&slots)
            .map(|(units, &slot)| Stripe::new(units.clone(), slot))
            .collect();
        Layout::from_stripes(self.v, self.size, stripes)
            .map_err(|e| AssignError::InvalidLayout(e.to_string()))
    }

    /// Theorem 14: assign one parity unit per stripe so every disk gets
    /// `⌊L(d)⌋` or `⌈L(d)⌉` parity units, and build the final layout.
    pub fn assign_parity(&self) -> Result<Layout, AssignError> {
        let counts = vec![1usize; self.stripes.len()];
        let chosen = self.assign_distinguished(&counts)?;
        let stripes = self
            .stripes
            .iter()
            .zip(&chosen)
            .map(|(units, slots)| {
                debug_assert_eq!(slots.len(), 1);
                Stripe::new(units.clone(), slots[0])
            })
            .collect();
        Layout::from_stripes(self.v, self.size, stripes)
            .map_err(|e| AssignError::InvalidLayout(e.to_string()))
    }
}

/// Corollary 17 / the Holland–Gibson lcm conjecture: the number of copies
/// of a `b`-block design needed for perfectly balanceable parity is
/// `lcm(b, v)/b`.
pub fn copies_for_perfect_parity(b: usize, v: usize) -> usize {
    (pdl_algebra::nt::lcm(b as u64, v as u64) / b as u64) as usize
}

/// The improved Holland–Gibson pipeline: replicate the design the minimal
/// `lcm(b,v)/b` times, place it, and flow-assign parity — perfectly
/// balanced by Corollary 16, at size `r·lcm(b,v)/b` instead of `k·r`.
pub fn minimal_balanced_layout(design: &BlockDesign) -> Result<Layout, AssignError> {
    let copies = copies_for_perfect_parity(design.b(), design.v());
    let replicated = design.replicate(copies);
    let single = crate::hg::single_copy_layout(&replicated, 0);
    StripePartition::from_layout(&single).assign_parity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{parity_counts, QualityReport};
    use crate::ring_layout::RingLayout;
    use pdl_design::{complete_design, theorem4_design, theorem6_design};

    #[test]
    fn theorem14_floor_ceil_on_single_copy() {
        // One copy of the complete design v=4, k=3: b=4, L(d) = r/k = 1.
        let d = complete_design(4, 3, 100);
        let l = crate::hg::single_copy_layout(&d, 0);
        let balanced = StripePartition::from_layout(&l).assign_parity().unwrap();
        assert_eq!(parity_counts(&balanced), vec![1, 1, 1, 1], "b=4, v=4: perfect");
    }

    #[test]
    fn theorem14_when_v_does_not_divide_b() {
        // Fano-like: theorem4 q=7 k=3 → b=21, v=7: 21/7=3 perfect.
        let c = theorem4_design(7, 3);
        let l = crate::hg::single_copy_layout(&c.design, 0);
        let balanced = StripePartition::from_layout(&l).assign_parity().unwrap();
        assert_eq!(parity_counts(&balanced), vec![3; 7]);

        // v=8, k=2, theorem4: b = 8·7/gcd(7,1) = 56; 56/8 = 7 perfect.
        let c = theorem4_design(8, 2);
        let l = crate::hg::single_copy_layout(&c.design, 0);
        let balanced = StripePartition::from_layout(&l).assign_parity().unwrap();
        assert_eq!(parity_counts(&balanced), vec![7; 8]);
    }

    #[test]
    fn corollary16_within_one() {
        // Theorem 6 design v=9, k=3: b=12, v=9 → 12/9: counts in {1,2}.
        let c = theorem6_design(9, 3);
        let l = crate::hg::single_copy_layout(&c.design, 0);
        let balanced = StripePartition::from_layout(&l).assign_parity().unwrap();
        let counts = parity_counts(&balanced);
        assert_eq!(counts.iter().sum::<usize>(), 12);
        assert!(counts.iter().all(|&x| x == 1 || x == 2), "{counts:?}");
    }

    #[test]
    fn corollary17_lcm_replication() {
        assert_eq!(copies_for_perfect_parity(12, 9), 3); // lcm(12,9)=36
        assert_eq!(copies_for_perfect_parity(4, 4), 1);
        assert_eq!(copies_for_perfect_parity(7, 5), 5);
        assert_eq!(copies_for_perfect_parity(21, 7), 1);
    }

    #[test]
    fn minimal_balanced_layout_is_perfect_and_small() {
        // A case where the lcm method beats k-copy replication outright:
        // v=13, k=4 via Theorem 5 (g = gcd(12,4) = 4): b=39, r=12.
        // 13 | 39 → a single copy balances perfectly: size 12 vs k·r=48.
        let c = pdl_design::theorem5_design(13, 4);
        assert_eq!(c.params.b, 39);
        let l = minimal_balanced_layout(&c.design).unwrap();
        assert_eq!(l.size(), c.params.r, "a single copy suffices when v | b");
        let q = QualityReport::measure(&l);
        assert!(q.parity_balanced());
        assert_eq!(parity_counts(&l), vec![3; 13]);
    }

    #[test]
    fn irregular_stripe_sizes_still_floor_ceil() {
        // Mixed stripe sizes: Theorem 8 removal output re-balanced.
        let rl = RingLayout::for_v_k(7, 3);
        let removed = rl.remove_disk(2);
        let part = StripePartition::from_layout(&removed);
        let counts_vec = vec![1usize; part.stripes().len()];
        let loads = part.loads(&counts_vec);
        let balanced = part.assign_parity().unwrap();
        let counts = parity_counts(&balanced);
        for (d, &c) in counts.iter().enumerate() {
            let l = loads[d];
            assert!(
                c as f64 >= l.floor() - 1e-9 && c as f64 <= l.ceil() + 1e-9,
                "disk {d}: count {c} vs load {l}"
            );
        }
    }

    #[test]
    fn generalized_two_units_per_stripe() {
        // cs = 2: pick parity + spare, balanced within one.
        let d = complete_design(6, 3, 1000);
        let l = crate::hg::single_copy_layout(&d, 0);
        let part = StripePartition::from_layout(&l);
        let counts = vec![2usize; part.stripes().len()];
        let chosen = part.assign_distinguished(&counts).unwrap();
        let mut per_disk = [0usize; 6];
        for (stripe, slots) in part.stripes().iter().zip(&chosen) {
            assert_eq!(slots.len(), 2);
            assert_ne!(slots[0], slots[1]);
            for &s in slots {
                per_disk[stripe[s].disk as usize] += 1;
            }
        }
        let loads = part.loads(&counts);
        for (d, &c) in per_disk.iter().enumerate() {
            assert!(c as f64 >= loads[d].floor() - 1e-9 && c as f64 <= loads[d].ceil() + 1e-9);
        }
    }

    #[test]
    fn count_too_large_rejected() {
        let d = complete_design(4, 2, 100);
        let l = crate::hg::single_copy_layout(&d, 0);
        let part = StripePartition::from_layout(&l);
        let mut counts = vec![1usize; part.stripes().len()];
        counts[0] = 3;
        assert!(matches!(
            part.assign_distinguished(&counts),
            Err(AssignError::CountTooLarge { stripe: 0, .. })
        ));
    }

    #[test]
    fn two_phase_matches_generic_guarantee() {
        // Both flow formulations deliver the same floor/ceil balance on
        // the same partitions (assignments may differ).
        for (v, k) in [(9usize, 4usize), (13, 4), (7, 3)] {
            let rl = RingLayout::for_v_k(v, k);
            let removed = rl.remove_disk(0); // ragged stripes
            let part = StripePartition::from_layout(&removed);
            let loads = part.loads(&vec![1; part.stripes().len()]);
            let a = part.assign_parity().unwrap();
            let b = part.assign_parity_two_phase().unwrap();
            for l in [&a, &b] {
                for (d, &c) in parity_counts(l).iter().enumerate() {
                    assert!(
                        c as f64 >= loads[d].floor() - 1e-9 && c as f64 <= loads[d].ceil() + 1e-9,
                        "v={v} k={k} disk {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn reassignment_does_not_change_geometry() {
        let rl = RingLayout::for_v_k(8, 3);
        let before = rl.layout();
        let after = StripePartition::from_layout(before).assign_parity().unwrap();
        assert_eq!(before.v(), after.v());
        assert_eq!(before.size(), after.size());
        assert_eq!(before.b(), after.b());
        for (s1, s2) in before.stripes().iter().zip(after.stripes()) {
            assert_eq!(s1.units(), s2.units());
        }
    }
}
