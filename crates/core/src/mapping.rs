//! Logical→physical address mapping (Condition 4).
//!
//! The paper requires the map from a logical data-unit address to its
//! `(disk, offset)` to cost one table lookup plus O(1) arithmetic, with
//! the table small enough to pin in memory. [`AddressMapper`] is exactly
//! that: a flat table over one layout copy, extended to arbitrarily large
//! disks by tiling copies arithmetically.

use crate::layout::{Layout, StripeUnit, UnitRole};

/// Table-driven address mapper for a layout.
#[derive(Clone, Debug)]
pub struct AddressMapper {
    v: usize,
    size: usize,
    /// Logical data unit `i` (within one copy) → physical unit.
    table: Vec<StripeUnit>,
    /// `(disk, offset)` → logical index within the copy (data units only).
    reverse: Vec<u32>,
    /// Stripe index of each logical unit (for parity lookups).
    stripe_of: Vec<u32>,
}

const NOT_DATA: u32 = u32::MAX;

impl AddressMapper {
    /// Builds the mapper. Logical addresses enumerate data units in
    /// stripe order, which keeps logically adjacent units in the same
    /// stripe adjacent on disk (locality for large sequential IO).
    pub fn new(layout: &Layout) -> Self {
        let (v, size) = (layout.v(), layout.size());
        let mut table = Vec::with_capacity(layout.data_unit_count());
        let mut reverse = vec![NOT_DATA; v * size];
        let mut stripe_of = Vec::with_capacity(layout.data_unit_count());
        for (si, stripe) in layout.stripes().iter().enumerate() {
            for u in stripe.data_units() {
                reverse[u.disk as usize * size + u.offset as usize] = table.len() as u32;
                table.push(u);
                stripe_of.push(si as u32);
            }
        }
        AddressMapper { v, size, table, reverse, stripe_of }
    }

    /// Data units per layout copy.
    pub fn data_units_per_copy(&self) -> usize {
        self.table.len()
    }

    /// Number of disks.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Physical location of logical unit `addr`, tiling layout copies
    /// down the disks for addresses beyond one copy: one modulo, one
    /// table lookup, one add (Condition 4's "table lookup plus a small
    /// constant number of arithmetic operations").
    pub fn locate(&self, addr: usize) -> StripeUnit {
        let copy = addr / self.table.len();
        let base = self.table[addr % self.table.len()];
        StripeUnit { disk: base.disk, offset: base.offset + (copy * self.size) as u32 }
    }

    /// The parity unit protecting logical unit `addr`, mapped into the
    /// same copy.
    pub fn parity_of(&self, addr: usize, layout: &Layout) -> StripeUnit {
        let copy = addr / self.table.len();
        let si = self.stripe_of[addr % self.table.len()] as usize;
        let p = layout.stripes()[si].parity_unit();
        StripeUnit { disk: p.disk, offset: p.offset + (copy * self.size) as u32 }
    }

    /// Stripe (within the copy) of a logical address.
    pub fn stripe_of(&self, addr: usize) -> usize {
        self.stripe_of[addr % self.table.len()] as usize
    }

    /// Logical address of a physical data unit within copy 0, if it is a
    /// data unit.
    pub fn logical_of(&self, u: StripeUnit) -> Option<usize> {
        let copy = u.offset as usize / self.size;
        let idx = self.reverse[u.disk as usize * self.size + u.offset as usize % self.size];
        (idx != NOT_DATA).then(|| idx as usize + copy * self.table.len())
    }

    /// Size of the lookup table in entries — the paper's Condition 4
    /// efficiency measure.
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }

    /// Approximate resident bytes of all tables.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<StripeUnit>()
            + self.reverse.len() * 4
            + self.stripe_of.len() * 4
    }
}

/// Round-trips every data unit of a layout through the mapper; used by
/// tests and the verification binaries.
pub fn verify_mapper(layout: &Layout) -> bool {
    let m = AddressMapper::new(layout);
    for addr in 0..m.data_units_per_copy() {
        let u = m.locate(addr);
        if layout.role(u.disk as usize, u.offset as usize) != UnitRole::Data {
            return false;
        }
        if m.logical_of(u) != Some(addr) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hg::{holland_gibson_layout, raid5_layout};
    use crate::ring_layout::RingLayout;
    use pdl_design::complete_design;

    #[test]
    fn roundtrip_on_ring_layout() {
        let rl = RingLayout::for_v_k(9, 4);
        assert!(verify_mapper(rl.layout()));
    }

    #[test]
    fn roundtrip_on_hg_layout() {
        let l = holland_gibson_layout(&complete_design(5, 3, 100));
        assert!(verify_mapper(&l));
    }

    #[test]
    fn roundtrip_on_raid5() {
        assert!(verify_mapper(&raid5_layout(6, 12)));
    }

    #[test]
    fn data_unit_count_matches() {
        let rl = RingLayout::for_v_k(7, 3);
        let m = AddressMapper::new(rl.layout());
        assert_eq!(m.data_units_per_copy(), rl.layout().data_unit_count());
        // ring layout: b stripes of k units, 1 parity each
        assert_eq!(m.data_units_per_copy(), rl.layout().b() * (3 - 1));
    }

    #[test]
    fn multi_copy_tiling() {
        let rl = RingLayout::for_v_k(5, 3);
        let m = AddressMapper::new(rl.layout());
        let n = m.data_units_per_copy();
        let u0 = m.locate(7);
        let u1 = m.locate(7 + n);
        let u2 = m.locate(7 + 3 * n);
        assert_eq!(u0.disk, u1.disk);
        assert_eq!(u1.offset as usize, u0.offset as usize + rl.layout().size());
        assert_eq!(u2.offset as usize, u0.offset as usize + 3 * rl.layout().size());
        // reverse lookup works across copies
        assert_eq!(m.logical_of(u1), Some(7 + n));
    }

    #[test]
    fn parity_lookup() {
        let rl = RingLayout::for_v_k(5, 3);
        let l = rl.layout();
        let m = AddressMapper::new(l);
        for addr in 0..m.data_units_per_copy() {
            let p = m.parity_of(addr, l);
            assert_eq!(l.role(p.disk as usize, p.offset as usize), UnitRole::Parity);
            // the parity must share the stripe with the data unit
            let u = m.locate(addr);
            let su = l.unit_ref(u.disk as usize, u.offset as usize).stripe;
            let sp = l.unit_ref(p.disk as usize, p.offset as usize).stripe;
            assert_eq!(su, sp);
        }
    }

    #[test]
    fn table_size_reporting() {
        let rl = RingLayout::for_v_k(8, 3);
        let m = AddressMapper::new(rl.layout());
        assert_eq!(m.table_entries(), rl.layout().data_unit_count());
        assert!(m.table_bytes() > 0);
    }
}
