//! Holland & Gibson's Conditions 5 and 6 — "Large Write Optimization"
//! and "Maximal Parallelism" — which the paper sets aside and Stockmeyer
//! (IBM RJ-9915, 1994) later analyzed for these same layouts. They
//! depend on the *logical ordering* of data units, so they are metrics
//! of a layout **plus** its [`AddressMapper`].
//!
//! * Condition 5: a write of one stripe's worth of logically contiguous
//!   data units should cover a full stripe, so parity is computed from
//!   the new data alone (no pre-reads).
//! * Condition 6: a read of `v` logically contiguous units should engage
//!   all `v` disks.

use crate::layout::Layout;
use crate::mapping::AddressMapper;

/// Condition 5 score: the fraction of aligned logical groups of
/// `k−1` data units (for uniform-`k` layouts, one stripe's worth) that
/// lie entirely within a single stripe. 1.0 means every such write is a
/// full-stripe write.
pub fn large_write_score(layout: &Layout, mapper: &AddressMapper) -> f64 {
    let (kmin, kmax) = layout.stripe_size_range();
    let group = kmax.max(kmin).saturating_sub(1).max(1);
    let n = mapper.data_units_per_copy();
    let groups = n / group;
    if groups == 0 {
        return 1.0;
    }
    let mut aligned = 0usize;
    for g in 0..groups {
        let first = mapper.stripe_of(g * group);
        if (1..group).all(|i| mapper.stripe_of(g * group + i) == first) {
            aligned += 1;
        }
    }
    aligned as f64 / groups as f64
}

/// Condition 6 score: over all aligned windows of `v` consecutive
/// logical data units, the mean number of distinct disks touched,
/// divided by `v`. 1.0 means any such read keeps every arm busy.
pub fn parallelism_score(layout: &Layout, mapper: &AddressMapper) -> f64 {
    let v = layout.v();
    let n = mapper.data_units_per_copy();
    if n < v {
        return 0.0;
    }
    let windows = n / v;
    let mut total_distinct = 0usize;
    let mut seen = vec![usize::MAX; v];
    for w in 0..windows {
        for i in 0..v {
            let d = mapper.locate(w * v + i).disk as usize;
            if seen[d] != w {
                seen[d] = w;
                total_distinct += 1;
            }
        }
    }
    total_distinct as f64 / (windows * v) as f64
}

/// Worst-case variant of Condition 6: the minimum distinct-disk count
/// over all aligned `v`-unit windows, divided by `v`.
pub fn parallelism_worst(layout: &Layout, mapper: &AddressMapper) -> f64 {
    let v = layout.v();
    let n = mapper.data_units_per_copy();
    if n < v {
        return 0.0;
    }
    let windows = n / v;
    let mut worst = v;
    let mut seen = vec![usize::MAX; v];
    for w in 0..windows {
        let mut distinct = 0usize;
        for i in 0..v {
            let d = mapper.locate(w * v + i).disk as usize;
            if seen[d] != w {
                seen[d] = w;
                distinct += 1;
            }
        }
        worst = worst.min(distinct);
    }
    worst as f64 / v as f64
}

/// Bundle of the Condition 5/6 scores for reporting.
#[derive(Clone, Copy, Debug)]
pub struct ParallelismReport {
    /// Condition 5: aligned full-stripe-write fraction.
    pub large_write: f64,
    /// Condition 6: mean distinct-disk fraction per v-unit window.
    pub parallelism_mean: f64,
    /// Condition 6: worst-case distinct-disk fraction.
    pub parallelism_worst: f64,
}

impl ParallelismReport {
    /// Measures both conditions for a layout.
    pub fn measure(layout: &Layout) -> Self {
        let mapper = AddressMapper::new(layout);
        ParallelismReport {
            large_write: large_write_score(layout, &mapper),
            parallelism_mean: parallelism_score(layout, &mapper),
            parallelism_worst: parallelism_worst(layout, &mapper),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hg::{holland_gibson_layout, raid5_layout};
    use crate::ring_layout::RingLayout;
    use pdl_design::complete_design;

    #[test]
    fn raid5_is_ideal_on_both_conditions() {
        // Full-width stripes + stripe-ordered addressing: every (v-1)-unit
        // aligned write is a full stripe; every v-unit read touches… well,
        // v-1 data disks per stripe row plus spill-over. Large-write must
        // be exactly 1.
        let l = raid5_layout(5, 10);
        let r = ParallelismReport::measure(&l);
        assert_eq!(r.large_write, 1.0);
        assert!(r.parallelism_mean > 0.9, "{:?}", r);
    }

    #[test]
    fn ring_layout_scores() {
        let rl = RingLayout::for_v_k(9, 4);
        let r = ParallelismReport::measure(rl.layout());
        // stripe-ordered logical addressing makes aligned k-1 groups
        // coincide with stripes exactly
        assert_eq!(r.large_write, 1.0);
        assert!(r.parallelism_mean > 0.5, "{:?}", r);
        assert!(r.parallelism_worst <= r.parallelism_mean);
    }

    #[test]
    fn hg_layout_scores() {
        let l = holland_gibson_layout(&complete_design(5, 3, 100));
        let r = ParallelismReport::measure(&l);
        assert_eq!(r.large_write, 1.0);
        assert!(r.parallelism_mean > 0.4);
    }

    #[test]
    fn mixed_stripe_sizes_degrade_large_write() {
        // Theorem 8 output has stripes of size k and k-1: aligned groups
        // drift out of stripe alignment.
        let l = RingLayout::for_v_k(9, 4).remove_disk(0);
        let r = ParallelismReport::measure(&l);
        assert!(r.large_write < 1.0, "{:?}", r);
        assert!(r.large_write > 0.0);
    }

    #[test]
    fn scores_bounded() {
        for (v, k) in [(5usize, 3usize), (8, 4), (13, 4)] {
            let rl = RingLayout::for_v_k(v, k);
            let r = ParallelismReport::measure(rl.layout());
            for x in [r.large_write, r.parallelism_mean, r.parallelism_worst] {
                assert!((0.0..=1.0).contains(&x), "v={v} k={k}: {r:?}");
            }
        }
    }
}
