//! Extendible layouts (Section 5 open problem): growing an array by
//! adding disks with minimal data movement.
//!
//! The stairway transformation is a natural extension mechanism — the
//! `q`-disk layout's stripes survive intact (only their physical homes
//! move), whereas regenerating a fresh layout scrambles everything. This
//! module quantifies that: the *relayout cost* is the fraction of logical
//! data units whose physical location changes.

use crate::layout::Layout;
use crate::mapping::AddressMapper;

/// Fraction of logical data units that live at different physical
/// locations in `old` vs `new` (comparing the first
/// `min(data_units(old), data_units(new))` logical addresses; disks
/// present only in `new` hold fresh units and do not count as moves).
pub fn relayout_cost(old: &Layout, new: &Layout) -> f64 {
    let mo = AddressMapper::new(old);
    let mn = AddressMapper::new(new);
    let n = mo.data_units_per_copy().min(mn.data_units_per_copy());
    if n == 0 {
        return 0.0;
    }
    let moved = (0..n).filter(|&a| mo.locate(a) != mn.locate(a)).count();
    moved as f64 / n as f64
}

/// Movement report for one extension step.
#[derive(Clone, Copy, Debug)]
pub struct ExtensionReport {
    /// Disks before.
    pub v_old: usize,
    /// Disks after.
    pub v_new: usize,
    /// Fraction of previously stored data units that must move.
    pub moved_fraction: f64,
    /// Units per disk after extension.
    pub new_size: usize,
}

/// Extends a ring layout for `q` disks to `v` disks via the stairway
/// transformation and reports the piece-level data movement (see
/// [`crate::stairway::stairway_movement`]): bottom-staircase pieces keep
/// their exact physical position, so only the shifted top triangle (and
/// the wide-step deletions) must be copied.
pub fn extend_via_stairway(
    design: &pdl_design::RingDesign,
    v: usize,
) -> Result<ExtensionReport, crate::stairway::StairwayError> {
    let q = design.v();
    let extended = crate::stairway::stairway_layout(design, v)?;
    let moved = crate::stairway::stairway_movement(q, v)
        .expect("stairway_layout succeeded, so params exist");
    Ok(ExtensionReport { v_old: q, v_new: v, moved_fraction: moved, new_size: extended.size() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_layout::RingLayout;
    use pdl_design::RingDesign;

    #[test]
    fn identity_has_zero_cost() {
        let rl = RingLayout::for_v_k(7, 3);
        assert_eq!(relayout_cost(rl.layout(), rl.layout()), 0.0);
    }

    #[test]
    fn different_layouts_have_positive_cost() {
        let a = RingLayout::for_v_k(7, 3);
        let b = RingLayout::for_v_k(8, 3);
        assert!(relayout_cost(a.layout(), b.layout()) > 0.0);
    }

    #[test]
    fn stairway_extension_reports() {
        let design = RingDesign::for_v_k(8, 3);
        let rep = extend_via_stairway(&design, 10).unwrap();
        assert_eq!(rep.v_old, 8);
        assert_eq!(rep.v_new, 10);
        assert!(rep.moved_fraction > 0.0 && rep.moved_fraction <= 1.0);
    }

    #[test]
    fn stairway_moves_less_than_regeneration() {
        // Extending 8 → 9 via stairway moves only the top staircase
        // triangle (~half the pieces); regenerating a fresh 9-disk ring
        // layout relocates nearly everything.
        let design = RingDesign::for_v_k(8, 3);
        let base = RingLayout::new(design.clone());
        let rep = extend_via_stairway(&design, 9).unwrap();
        let regen = RingLayout::for_v_k(9, 3);
        let cost_regen = relayout_cost(base.layout(), regen.layout());
        assert!(
            rep.moved_fraction < cost_regen,
            "stairway {} should beat regeneration {cost_regen}",
            rep.moved_fraction
        );
        // Theorem 10 case (d = 1): the top triangle is (c−1)(c−2)/2 of
        // (c−1)·q pieces → (q−1)/(2q) — just under one half.
        let expect = (8.0 - 1.0) / (2.0 * 8.0);
        assert!((rep.moved_fraction - expect).abs() < 1e-12, "{}", rep.moved_fraction);
    }

    #[test]
    fn movement_fraction_bounds() {
        use crate::stairway::stairway_movement;
        for (q, v) in [(8usize, 9usize), (8, 10), (9, 12), (9, 13), (13, 16)] {
            let m = stairway_movement(q, v).unwrap();
            assert!(m > 0.0 && m < 1.0, "q={q} v={v}: {m}");
        }
        assert_eq!(stairway_movement(5, 12), None);
    }
}
