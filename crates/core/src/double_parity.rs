//! Double parity (P+Q) declustering — the paper's own suggested
//! extension of Theorem 14: "a natural extension that applies to the
//! more general problem of selecting some number of distinguished units
//! (perhaps more than one) from each stripe, and balancing them among
//! the disks."
//!
//! With two distinguished units per stripe (P and Q, e.g. XOR +
//! Reed–Solomon), the array tolerates any two simultaneous disk
//! failures; the generalized flow assignment balances the combined
//! parity load to within one unit per disk.

use crate::layout::{Layout, StripeUnit, UnitRole};
use crate::parity_assign::{AssignError, StripePartition};

/// A layout where every stripe carries two distinguished parity units
/// (P and Q), both populations balanced across disks by the generalized
/// Theorem 14 flow.
#[derive(Clone, Debug)]
pub struct DoubleParityLayout {
    layout: Layout,
    /// `(p_slot, q_slot)` per stripe, indices into the stripe's units.
    parity_slots: Vec<(usize, usize)>,
}

impl DoubleParityLayout {
    /// Chooses P and Q units for every stripe of `layout` (the layout's
    /// own single-parity choice is ignored). Stripes need at least 3
    /// units to keep one data unit; smaller stripes are rejected.
    pub fn new(layout: Layout) -> Result<Self, AssignError> {
        if let Some(bad) = layout.stripes().iter().position(|s| s.len() < 3) {
            return Err(AssignError::CountTooLarge {
                stripe: bad,
                requested: 2,
                size: layout.stripes()[bad].len() - 1,
            });
        }
        let part = StripePartition::from_layout(&layout);
        let counts = vec![2usize; layout.b()];
        let chosen = part.assign_distinguished(&counts)?;
        let parity_slots = chosen
            .into_iter()
            .map(|slots| {
                debug_assert_eq!(slots.len(), 2);
                (slots[0], slots[1])
            })
            .collect();
        Ok(DoubleParityLayout { layout, parity_slots })
    }

    /// Rebuilds a double-parity layout from a previously chosen slot
    /// assignment (e.g. one persisted by a store's metadata), validating
    /// that every stripe gets two distinct slots on distinct disks.
    /// Unlike [`DoubleParityLayout::new`] this does not re-run the flow
    /// assignment, so the exact on-disk parity placement round-trips.
    pub fn from_parts(
        layout: Layout,
        parity_slots: Vec<(usize, usize)>,
    ) -> Result<Self, AssignError> {
        if parity_slots.len() != layout.b() {
            return Err(AssignError::InvalidLayout(format!(
                "{} slot pairs for {} stripes",
                parity_slots.len(),
                layout.b()
            )));
        }
        for (s, &(p, q)) in parity_slots.iter().enumerate() {
            let units = layout.stripes()[s].units();
            if p >= units.len() || q >= units.len() {
                return Err(AssignError::InvalidLayout(format!(
                    "stripe {s}: parity slot out of range ({p}, {q}) in a {}-unit stripe",
                    units.len()
                )));
            }
            if p == q || units[p].disk == units[q].disk {
                return Err(AssignError::InvalidLayout(format!(
                    "stripe {s}: P and Q must be distinct units on distinct disks"
                )));
            }
        }
        Ok(DoubleParityLayout { layout, parity_slots })
    }

    /// The underlying layout geometry.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The `(P, Q)` units of stripe `s`.
    pub fn parity_units(&self, s: usize) -> (StripeUnit, StripeUnit) {
        let (p, q) = self.parity_slots[s];
        let units = self.layout.stripes()[s].units();
        (units[p], units[q])
    }

    /// The `(P, Q)` slot indices of stripe `s` (into its unit list).
    pub fn parity_slots(&self, s: usize) -> (usize, usize) {
        self.parity_slots[s]
    }

    /// The `(P, Q)` slot pairs of every stripe, in stripe order — the
    /// serializable form of the assignment (see
    /// [`DoubleParityLayout::from_parts`]).
    pub fn all_parity_slots(&self) -> &[(usize, usize)] {
        &self.parity_slots
    }

    /// Role of a unit under double parity.
    pub fn role(&self, disk: usize, offset: usize) -> UnitRole {
        let r = self.layout.unit_ref(disk, offset);
        let (p, q) = self.parity_slots[r.stripe as usize];
        if r.slot as usize == p || r.slot as usize == q {
            UnitRole::Parity
        } else {
            UnitRole::Data
        }
    }

    /// Combined parity units per disk (P + Q together).
    pub fn parity_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.layout.v()];
        for s in 0..self.layout.b() {
            let (p, q) = self.parity_units(s);
            counts[p.disk as usize] += 1;
            counts[q.disk as usize] += 1;
        }
        counts
    }

    /// Fraction of each disk holding parity (overhead ≈ 2/k).
    pub fn parity_overheads(&self) -> Vec<f64> {
        self.parity_counts().iter().map(|&c| c as f64 / self.layout.size() as f64).collect()
    }

    /// True if every stripe still has at least one surviving *readable*
    /// unit combination after the two given disks fail — i.e. at most
    /// two units lost per stripe (always true by Condition 1).
    pub fn survives_double_failure(&self, f1: usize, f2: usize) -> bool {
        assert_ne!(f1, f2);
        self.layout.stripes().iter().all(|s| {
            let lost =
                s.units().iter().filter(|u| u.disk as usize == f1 || u.disk as usize == f2).count();
            // With 2 parities, any ≤2 lost units are recoverable as
            // long as the stripe had ≥ lost redundancy.
            lost <= 2
        })
    }

    /// Reconstruction workload for a *double* failure `(f1, f2)`: the
    /// fraction of disk `d` that must be read to rebuild both, counting
    /// each stripe crossing `d` and at least one failed disk once.
    pub fn double_failure_workload(&self, f1: usize, f2: usize, d: usize) -> f64 {
        assert!(d != f1 && d != f2);
        let crossing = self
            .layout
            .stripes()
            .iter()
            .filter(|s| s.crosses(d) && (s.crosses(f1) || s.crosses(f2)))
            .count();
        crossing as f64 / self.layout.size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_layout::RingLayout;

    fn dp(v: usize, k: usize) -> DoubleParityLayout {
        DoubleParityLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap()
    }

    #[test]
    fn parity_balanced_within_one() {
        for (v, k) in [(9usize, 4usize), (13, 4), (16, 5), (25, 6)] {
            let d = dp(v, k);
            let counts = d.parity_counts();
            let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(hi - lo <= 1, "v={v} k={k}: {counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), 2 * d.layout().b());
        }
    }

    #[test]
    fn p_and_q_are_distinct_units() {
        let d = dp(9, 4);
        for s in 0..d.layout().b() {
            let (p, q) = d.parity_units(s);
            assert_ne!(p, q);
            assert_ne!(p.disk, q.disk, "P and Q must sit on different disks");
        }
    }

    #[test]
    fn overhead_is_two_over_k() {
        let d = dp(13, 4);
        for o in d.parity_overheads() {
            assert!((o - 2.0 / 4.0).abs() < 0.05, "overhead {o}");
        }
    }

    #[test]
    fn roles_count_correctly() {
        let d = dp(9, 4);
        let l = d.layout();
        let parity = (0..l.v())
            .flat_map(|disk| (0..l.size()).map(move |off| (disk, off)))
            .filter(|&(disk, off)| d.role(disk, off) == UnitRole::Parity)
            .count();
        assert_eq!(parity, 2 * l.b());
    }

    #[test]
    fn survives_any_double_failure() {
        let d = dp(13, 4);
        for f1 in 0..13 {
            for f2 in f1 + 1..13 {
                assert!(d.survives_double_failure(f1, f2));
            }
        }
    }

    #[test]
    fn double_failure_workload_below_raid6_full() {
        // Declustered double parity reads less than the whole survivor.
        let d = dp(13, 4);
        let w = d.double_failure_workload(0, 1, 5);
        assert!(w < 1.0, "workload {w}");
        assert!(w > 0.0);
    }

    #[test]
    fn from_parts_roundtrips_assignment() {
        let d = dp(9, 4);
        let slots = d.all_parity_slots().to_vec();
        let back = DoubleParityLayout::from_parts(d.layout().clone(), slots.clone()).unwrap();
        assert_eq!(back.all_parity_slots(), &slots[..]);
        for s in 0..d.layout().b() {
            assert_eq!(back.parity_units(s), d.parity_units(s));
        }
    }

    #[test]
    fn from_parts_rejects_bad_slots() {
        let d = dp(9, 4);
        let layout = d.layout().clone();
        // Wrong count.
        assert!(DoubleParityLayout::from_parts(layout.clone(), vec![(0, 1)]).is_err());
        // P == Q.
        let bad: Vec<_> = (0..layout.b()).map(|_| (0usize, 0usize)).collect();
        assert!(DoubleParityLayout::from_parts(layout.clone(), bad).is_err());
        // Out of range.
        let bad: Vec<_> = (0..layout.b()).map(|_| (0usize, 99usize)).collect();
        assert!(DoubleParityLayout::from_parts(layout, bad).is_err());
    }

    #[test]
    fn stripes_too_small_rejected() {
        let rl = RingLayout::for_v_k(5, 2); // k=2 cannot hold P+Q+data
        assert!(DoubleParityLayout::new(rl.layout().clone()).is_err());
    }
}
