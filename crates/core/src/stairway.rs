//! The stairway transformation (Section 3.2, Theorems 10–12): growing a
//! ring-based layout for `q` disks into an approximately balanced layout
//! for `v > q` disks.
//!
//! `c` copies of the `q`-disk layout are stacked as a `c × q` grid of
//! *pieces* (piece = one disk's units in one copy, height `k(q−1)`). The
//! grid is cut along a staircase whose steps are `d = v−q` columns wide
//! (`w` of them one column wider when `d ∤ v`), and the part above the
//! staircase is shifted right `d` and down 1. Wide steps make the two
//! parts overlap in one piece; that piece's disk is removed from its copy
//! per Theorem 8, which is what introduces the (bounded) parity imbalance.

use crate::layout::{Layout, Stripe, StripeUnit};
use crate::ring_layout::ring_copy_stripes;
use pdl_design::RingDesign;
use std::fmt;

/// Parameters of a stairway transformation `q → v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StairwayParams {
    /// Source array size (a ring-based layout must exist for `q`).
    pub q: usize,
    /// Target array size.
    pub v: usize,
    /// Step width `d = v − q`.
    pub d: usize,
    /// Number of stacked copies: `v = c·d + w`.
    pub c: usize,
    /// Number of wide (width `d+1`) steps, `w < c`.
    pub w: usize,
}

impl StairwayParams {
    /// Solves conditions (8)–(9) of the paper for `q → v`:
    /// `v = c(v−q) + w`, `0 ≤ w < c`, taking the canonical `c = ⌊v/d⌋`.
    /// Returns `None` when no valid transformation exists (`v ≤ q`,
    /// `v > 2q`, or `w ≥ c`).
    pub fn solve(q: usize, v: usize) -> Option<StairwayParams> {
        if v <= q || q < 2 {
            return None;
        }
        let d = v - q;
        let c = v / d;
        let w = v - c * d;
        // Need at least one step (c ≥ 2) and w < c.
        (c >= 2 && w < c).then_some(StairwayParams { q, v, d, c, w })
    }

    /// Layout size `k(c−1)(q−1)` (Theorems 10–12).
    pub fn size(&self, k: usize) -> usize {
        k * (self.c - 1) * (self.q - 1)
    }

    /// Paper bounds on parity overhead: exactly `1/k` when `w = 0`
    /// (Theorems 10/11), otherwise
    /// `1/k + (1/k)·[(w−1), w]/((c−1)(q−1))` (Theorem 12).
    pub fn parity_overhead_bounds(&self, k: usize) -> (f64, f64) {
        let kf = k as f64;
        if self.w == 0 {
            (1.0 / kf, 1.0 / kf)
        } else {
            let denom = ((self.c - 1) * (self.q - 1)) as f64;
            (
                1.0 / kf + (self.w as f64 - 1.0) / (kf * denom),
                1.0 / kf + self.w as f64 / (kf * denom),
            )
        }
    }

    /// Paper bounds on reconstruction workload:
    /// `[(c−2)/(c−1)]·(k−1)/(q−1)` up to `(k−1)/(q−1)` (Theorems 11/12);
    /// Theorem 10 (`d = 1`) achieves exactly `(k−1)/q`.
    pub fn reconstruction_workload_bounds(&self, k: usize) -> (f64, f64) {
        let base = (k as f64 - 1.0) / (self.q as f64 - 1.0);
        (base * (self.c as f64 - 2.0) / (self.c as f64 - 1.0), base)
    }
}

impl fmt::Display for StairwayParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stairway q={} → v={} (d={}, c={}, w={})", self.q, self.v, self.d, self.c, self.w)
    }
}

/// Failures of the stairway construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StairwayError {
    /// No `(c, w)` satisfying conditions (8)–(9) exists for this `q → v`.
    NoValidParams {
        /// Source size.
        q: usize,
        /// Target size.
        v: usize,
    },
    /// Internal: piece placement produced an inconsistent grid.
    PlacementInconsistent(String),
}

impl fmt::Display for StairwayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StairwayError::NoValidParams { q, v } => {
                write!(f, "no stairway parameters for q={q} → v={v}")
            }
            StairwayError::PlacementInconsistent(m) => write!(f, "placement inconsistent: {m}"),
        }
    }
}

impl std::error::Error for StairwayError {}

/// Piece destination: `(new_column, landing_row)` with landing rows in
/// `1..=c−1` (renumbered to `0..c−1` minus 1 when offsets are emitted).
fn place_piece(step_of: &[usize], d: usize, row: usize, col: usize) -> (usize, usize) {
    if row <= step_of[col] {
        (col + d, row + 1) // top part: right d, down 1
    } else {
        (col, row) // bottom part stays
    }
}

/// Data movement when the stairway is used as an *extension* mechanism
/// (Section 5's extendibility concern): an array of `q` disks holding
/// `c−1` stacked copies of the ring layout grows to `v` disks. Identify
/// old copy `t` with stairway grid row `t+1`; bottom pieces then keep
/// both their disk and their offset, while top pieces (and the pieces
/// deleted to resolve wide-step overlap) must move. Returns the moved
/// fraction of old pieces, or `None` if no stairway exists for `q → v`.
pub fn stairway_movement(q: usize, v: usize) -> Option<f64> {
    let params = StairwayParams::solve(q, v)?;
    let StairwayParams { d, c, w, .. } = params;
    let widths: Vec<usize> = (0..c - 1).map(|s| d + usize::from(s >= c - 1 - w)).collect();
    // Top pieces in old rows 1..=c−1: row i has one top piece per column
    // j with step(j) ≥ i, i.e. q − (width of steps 0..i−1).
    let mut moved = w; // each wide step deletes one bottom piece in rows ≥ 1
    let mut prefix = 0usize;
    for i in 1..c {
        prefix += widths.get(i - 1).copied().unwrap_or(0);
        moved += q.saturating_sub(prefix);
    }
    Some(moved as f64 / ((c - 1) * q) as f64)
}

/// Applies the stairway transformation to the ring design for `q` disks,
/// producing a validated layout for `v` disks.
#[allow(clippy::needless_range_loop)]
pub fn stairway_layout(design: &RingDesign, v: usize) -> Result<Layout, StairwayError> {
    let q = design.v();
    let k = design.k();
    let params = StairwayParams::solve(q, v).ok_or(StairwayError::NoValidParams { q, v })?;
    let StairwayParams { d, c, w, .. } = params;

    // Step widths: c−1 steps, the last w of them wide (width d+1).
    let widths: Vec<usize> = (0..c - 1).map(|s| d + usize::from(s >= c - 1 - w)).collect();
    debug_assert_eq!(widths.iter().sum::<usize>(), q);
    let mut step_of = Vec::with_capacity(q);
    for (s, &wd) in widths.iter().enumerate() {
        step_of.extend(std::iter::repeat_n(s, wd));
    }

    // Wide step s: the shifted top overlaps the stayed bottom at piece
    // (row s+1, col last(s)); remove that disk from copy s+1 (Theorem 8).
    let mut removed_in_row: Vec<Option<usize>> = vec![None; c];
    let mut col_end = 0usize;
    for (s, &wd) in widths.iter().enumerate() {
        col_end += wd;
        if wd == d + 1 {
            removed_in_row[s + 1] = Some(col_end - 1);
        }
    }

    // Verify the placement tiles the new grid exactly: every new column
    // gets c−1 pieces with distinct landing rows 1..=c−1.
    let mut occupancy = vec![vec![false; c]; v];
    for row in 0..c {
        for col in 0..q {
            if removed_in_row[row] == Some(col) {
                continue;
            }
            let (nc, lr) = place_piece(&step_of, d, row, col);
            if nc >= v || lr == 0 || lr >= c || occupancy[nc][lr] {
                return Err(StairwayError::PlacementInconsistent(format!(
                    "piece ({row},{col}) → ({nc},{lr}) collides or escapes"
                )));
            }
            occupancy[nc][lr] = true;
        }
    }
    for (nc, col_occ) in occupancy.iter().enumerate() {
        let n = col_occ.iter().filter(|&&b| b).count();
        if n != c - 1 {
            return Err(StairwayError::PlacementInconsistent(format!(
                "new column {nc} has {n} pieces, expected {}",
                c - 1
            )));
        }
    }

    // Emit stripes: every copy contributes its (possibly disk-removed)
    // ring layout, with units re-homed through the piece map.
    let h = k * (q - 1); // piece height
    let mut stripes = Vec::with_capacity(c * design.b());
    for row in 0..c {
        for (units, parity) in ring_copy_stripes(design, removed_in_row[row]) {
            let mapped: Vec<StripeUnit> = units
                .into_iter()
                .map(|(col, off)| {
                    let (nc, lr) = place_piece(&step_of, d, row, col);
                    StripeUnit::new(nc, (lr - 1) * h + off)
                })
                .collect();
            stripes.push(Stripe::new(mapped, parity));
        }
    }
    Layout::from_stripes(v, params.size(k), stripes)
        .map_err(|e| StairwayError::PlacementInconsistent(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;
    use pdl_design::RingDesign;

    fn check_against_bounds(q: usize, v: usize, k: usize) -> QualityReport {
        let params = StairwayParams::solve(q, v).unwrap();
        let design = RingDesign::for_v_k(q, k);
        let l = stairway_layout(&design, v).unwrap();
        assert_eq!(l.v(), v);
        assert_eq!(l.size(), params.size(k), "size = k(c-1)(q-1)");
        let r = QualityReport::measure(&l);
        let (olo, ohi) = params.parity_overhead_bounds(k);
        assert!(
            r.parity_overhead.0 >= olo - 1e-9 && r.parity_overhead.1 <= ohi + 1e-9,
            "q={q} v={v} k={k}: overhead {:?} outside [{olo},{ohi}]",
            r.parity_overhead
        );
        let (wlo, whi) = params.reconstruction_workload_bounds(k);
        assert!(
            r.reconstruction_workload.0 >= wlo - 1e-9 && r.reconstruction_workload.1 <= whi + 1e-9,
            "q={q} v={v} k={k}: workload {:?} outside [{wlo},{whi}]",
            r.reconstruction_workload
        );
        r
    }

    #[test]
    fn params_solver() {
        // Theorem 10 case: v = q+1 → d=1, c=v, w=0.
        assert_eq!(
            StairwayParams::solve(5, 6),
            Some(StairwayParams { q: 5, v: 6, d: 1, c: 6, w: 0 })
        );
        // Theorem 11 case: (v-q) | v.
        assert_eq!(
            StairwayParams::solve(8, 10),
            Some(StairwayParams { q: 8, v: 10, d: 2, c: 5, w: 0 })
        );
        // Theorem 12 case: wide steps needed. v=13, q=9 → d=4, c=3, w=1.
        assert_eq!(
            StairwayParams::solve(9, 13),
            Some(StairwayParams { q: 9, v: 13, d: 4, c: 3, w: 1 })
        );
        // Invalid: v too far from q.
        assert_eq!(StairwayParams::solve(5, 12), None);
        // Invalid: v ≤ q.
        assert_eq!(StairwayParams::solve(5, 5), None);
    }

    #[test]
    fn theorem10_exact_metrics() {
        // v = q+1: parity overhead exactly 1/k, workload exactly (k-1)/q.
        for (q, k) in [(4usize, 3usize), (5, 3), (7, 4), (8, 5), (9, 3)] {
            let v = q + 1;
            let r = check_against_bounds(q, v, k);
            assert!(r.parity_balanced(), "q={q} k={k}");
            assert!((r.parity_overhead.0 - 1.0 / k as f64).abs() < 1e-12);
            assert!(r.reconstruction_balanced(), "Theorem 10 workload is uniform");
            assert!(
                (r.reconstruction_workload.0 - (k as f64 - 1.0) / q as f64).abs() < 1e-12,
                "q={q} k={k}: workload {:?}",
                r.reconstruction_workload
            );
        }
    }

    #[test]
    fn theorem11_divisible_case() {
        // (v−q) | v: perfect parity balance, workload within [lo, hi].
        for (q, v, k) in [(8usize, 10usize, 3usize), (9, 12, 4), (16, 20, 5), (25, 30, 4)] {
            let r = check_against_bounds(q, v, k);
            assert!(r.parity_balanced(), "q={q} v={v} k={k}: Theorem 11 parity is perfect");
        }
    }

    #[test]
    fn theorem12_wide_steps() {
        // d ∤ v: w > 0 wide steps, slight parity imbalance within bounds.
        for (q, v, k) in [(9usize, 13usize, 4usize), (13, 16, 4), (11, 14, 5), (16, 21, 6)] {
            let params = StairwayParams::solve(q, v).unwrap();
            assert!(params.w > 0, "test case must exercise wide steps");
            check_against_bounds(q, v, k);
        }
    }

    #[test]
    fn stairway_rejects_invalid_targets() {
        let design = RingDesign::for_v_k(5, 3);
        assert!(matches!(stairway_layout(&design, 12), Err(StairwayError::NoValidParams { .. })));
        assert!(matches!(stairway_layout(&design, 5), Err(StairwayError::NoValidParams { .. })));
    }

    #[test]
    fn stairway_v_twice_q_is_degenerate_but_valid() {
        // v = 2q: c = 2, single step; two side-by-side copies.
        let design = RingDesign::for_v_k(7, 3);
        let l = stairway_layout(&design, 14).unwrap();
        assert_eq!(l.v(), 14);
        assert_eq!(l.size(), 3 * 6);
        let r = QualityReport::measure(&l);
        assert!(r.parity_balanced());
        // cross-half pairs share no stripes → min workload 0 (= (c-2)/(c-1) bound).
        assert_eq!(r.reconstruction_workload.0, 0.0);
    }

    #[test]
    fn composite_q_also_works() {
        // q need not be prime power as long as k ≤ M(q): q=15, k=3.
        let design = RingDesign::for_v_k(15, 3);
        let l = stairway_layout(&design, 18).unwrap();
        assert_eq!(l.v(), 18);
        let r = QualityReport::measure(&l);
        let params = StairwayParams::solve(15, 18).unwrap();
        let (olo, ohi) = params.parity_overhead_bounds(3);
        assert!(r.parity_overhead.0 >= olo - 1e-9 && r.parity_overhead.1 <= ohi + 1e-9);
    }

    #[test]
    fn all_stripes_still_k_or_k_minus_1() {
        let design = RingDesign::for_v_k(9, 4);
        let l = stairway_layout(&design, 13).unwrap(); // w = 1 → one removal
        let (lo, hi) = l.stripe_size_range();
        assert_eq!(hi, 4);
        assert!(lo >= 3);
    }
}
