//! Layout quality metrics — the measurable forms of Holland & Gibson's
//! Conditions 2 and 3 as the paper defines them in Section 1.
//!
//! * **Parity overhead** of a disk: the fraction of its units that are
//!   parity units; the disk with the most parity is the write bottleneck.
//! * **Reconstruction workload** of a pair `(failed, survivor)`: the
//!   fraction of the survivor that must be read to rebuild the failed
//!   disk — `#stripes crossing both / size`.

use crate::layout::Layout;
use std::fmt;

/// Number of parity units on each disk.
pub fn parity_counts(layout: &Layout) -> Vec<usize> {
    let mut counts = vec![0usize; layout.v()];
    for stripe in layout.stripes() {
        counts[stripe.parity_unit().disk as usize] += 1;
    }
    counts
}

/// Parity overhead per disk: `parity_count / size`.
pub fn parity_overheads(layout: &Layout) -> Vec<f64> {
    parity_counts(layout).iter().map(|&c| c as f64 / layout.size() as f64).collect()
}

/// `(min, max)` parity overhead over all disks.
pub fn parity_overhead_range(layout: &Layout) -> (f64, f64) {
    let ovs = parity_overheads(layout);
    let min = ovs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ovs.iter().cloned().fold(0.0, f64::max);
    (min, max)
}

/// `cross[f][d]` = number of stripes with units on both disks `f` and `d`
/// (diagonal = number of stripes crossing the disk).
pub fn crossing_matrix(layout: &Layout) -> Vec<Vec<usize>> {
    let v = layout.v();
    let mut m = vec![vec![0usize; v]; v];
    for stripe in layout.stripes() {
        let units = stripe.units();
        for (i, a) in units.iter().enumerate() {
            m[a.disk as usize][a.disk as usize] += 1;
            for b in units.iter().skip(i + 1) {
                m[a.disk as usize][b.disk as usize] += 1;
                m[b.disk as usize][a.disk as usize] += 1;
            }
        }
    }
    m
}

/// Reconstruction workload matrix: `w[f][d]` = fraction of disk `d` read
/// while reconstructing failed disk `f` (`f ≠ d`).
pub fn reconstruction_workloads(layout: &Layout) -> Vec<Vec<f64>> {
    let s = layout.size() as f64;
    crossing_matrix(layout)
        .into_iter()
        .enumerate()
        .map(|(f, row)| {
            row.into_iter()
                .enumerate()
                .map(|(d, c)| if f == d { 0.0 } else { c as f64 / s })
                .collect()
        })
        .collect()
}

/// `(min, max)` reconstruction workload over ordered pairs `f ≠ d`.
pub fn reconstruction_workload_range(layout: &Layout) -> (f64, f64) {
    let w = reconstruction_workloads(layout);
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    for (f, row) in w.iter().enumerate() {
        for (d, &x) in row.iter().enumerate() {
            if f != d {
                min = min.min(x);
                max = max.max(x);
            }
        }
    }
    (min, max)
}

/// A one-stop quality report covering Conditions 1–4.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Number of disks.
    pub v: usize,
    /// Units per disk (layout size; Condition 4 wants this small).
    pub size: usize,
    /// Number of stripes.
    pub b: usize,
    /// Smallest and largest stripe size.
    pub stripe_sizes: (usize, usize),
    /// Min/max parity units per disk (Condition 2: spread ≤ 1 is optimal).
    pub parity_units: (usize, usize),
    /// Min/max parity overhead.
    pub parity_overhead: (f64, f64),
    /// Min/max reconstruction workload over pairs (Condition 3).
    pub reconstruction_workload: (f64, f64),
    /// Whether size ≤ 10,000 (Condition 4 feasibility).
    pub feasible: bool,
}

impl QualityReport {
    /// Computes the full report for a layout.
    pub fn measure(layout: &Layout) -> Self {
        let counts = parity_counts(layout);
        let (pmin, pmax) =
            (counts.iter().copied().min().unwrap_or(0), counts.iter().copied().max().unwrap_or(0));
        QualityReport {
            v: layout.v(),
            size: layout.size(),
            b: layout.b(),
            stripe_sizes: layout.stripe_size_range(),
            parity_units: (pmin, pmax),
            parity_overhead: parity_overhead_range(layout),
            reconstruction_workload: reconstruction_workload_range(layout),
            feasible: layout.is_feasible(crate::layout::DEFAULT_FEASIBILITY_LIMIT),
        }
    }

    /// Perfectly balanced parity: every disk has the same number of
    /// parity units.
    pub fn parity_balanced(&self) -> bool {
        self.parity_units.0 == self.parity_units.1
    }

    /// Parity balanced to within one unit (the Theorem 14 guarantee).
    pub fn parity_nearly_balanced(&self) -> bool {
        self.parity_units.1 - self.parity_units.0 <= 1
    }

    /// Perfectly balanced reconstruction workload.
    pub fn reconstruction_balanced(&self) -> bool {
        let (lo, hi) = self.reconstruction_workload;
        (hi - lo).abs() < 1e-12
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "v={} size={} b={} stripes k∈[{},{}]",
            self.v, self.size, self.b, self.stripe_sizes.0, self.stripe_sizes.1
        )?;
        writeln!(
            f,
            "parity/disk ∈ [{},{}]  overhead ∈ [{:.4},{:.4}]",
            self.parity_units.0,
            self.parity_units.1,
            self.parity_overhead.0,
            self.parity_overhead.1
        )?;
        write!(
            f,
            "recon workload ∈ [{:.4},{:.4}]  feasible(10k)={}",
            self.reconstruction_workload.0, self.reconstruction_workload.1, self.feasible
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Stripe, StripeUnit};

    fn unit(d: usize, o: usize) -> StripeUnit {
        StripeUnit::new(d, o)
    }

    /// The paper's Fig. 2 layout: v=4, k=3 via the complete design, one
    /// copy, parity on the last unit of each stripe.
    fn fig2_like() -> Layout {
        // Stripes: {0,1,2},{0,1,3},{0,2,3},{1,2,3} at offsets packed
        // per-disk in order.
        let stripes = vec![
            Stripe::new(vec![unit(0, 0), unit(1, 0), unit(2, 0)], 2),
            Stripe::new(vec![unit(0, 1), unit(1, 1), unit(3, 0)], 2),
            Stripe::new(vec![unit(0, 2), unit(2, 1), unit(3, 1)], 2),
            Stripe::new(vec![unit(1, 2), unit(2, 2), unit(3, 2)], 2),
        ];
        Layout::from_stripes(4, 3, stripes).unwrap()
    }

    #[test]
    fn parity_counts_fig2() {
        // Parity on last units: disks 2,3,3,3 → counts [0,0,1,3].
        assert_eq!(parity_counts(&fig2_like()), vec![0, 0, 1, 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn crossing_matrix_symmetric_and_correct() {
        let m = crossing_matrix(&fig2_like());
        for f in 0..4 {
            assert_eq!(m[f][f], 3, "every disk crossed by r = 3 stripes");
            for d in 0..4 {
                assert_eq!(m[f][d], m[d][f]);
                if f != d {
                    // complete design λ = C(2,1) = 2
                    assert_eq!(m[f][d], 2);
                }
            }
        }
    }

    #[test]
    fn reconstruction_workload_fig2() {
        // (k-1)/(v-1) = 2/3 of each surviving disk.
        let (lo, hi) = reconstruction_workload_range(&fig2_like());
        assert!((lo - 2.0 / 3.0).abs() < 1e-12);
        assert!((hi - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quality_report_fields() {
        let r = QualityReport::measure(&fig2_like());
        assert_eq!(r.v, 4);
        assert_eq!(r.b, 4);
        assert!(!r.parity_balanced());
        assert!(r.reconstruction_balanced());
        assert!(r.feasible);
        let s = r.to_string();
        assert!(s.contains("v=4"));
    }

    #[test]
    fn raid5_style_workload_is_one() {
        // Full-width stripes: reconstruction reads 100% of every survivor.
        let stripes = vec![
            Stripe::new(vec![unit(0, 0), unit(1, 0), unit(2, 0)], 0),
            Stripe::new(vec![unit(0, 1), unit(1, 1), unit(2, 1)], 1),
            Stripe::new(vec![unit(0, 2), unit(1, 2), unit(2, 2)], 2),
        ];
        let l = Layout::from_stripes(3, 3, stripes).unwrap();
        let (lo, hi) = reconstruction_workload_range(&l);
        assert_eq!((lo, hi), (1.0, 1.0));
        let r = QualityReport::measure(&l);
        assert!(r.parity_balanced());
    }
}
