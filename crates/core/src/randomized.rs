//! Randomized layouts in the spirit of Merchant & Yu's clustered RAID
//! (referenced in Section 5 as a comparison family): stripes choose `k`
//! disks (approximately) uniformly at random, subject to exact coverage.
//!
//! These satisfy the balance conditions only *in expectation*; the
//! Section 5 experiments compare their workload spread against the exact
//! and approximately-balanced combinatorial layouts.

use crate::layout::{Layout, StripeUnit};
use crate::parity_assign::{AssignError, StripePartition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a random layout on `v` disks with stripe size `k` and
/// `rows · v / k` stripes (requires `k | rows·v`); parity is balanced
/// afterwards with the Section 4 flow method, isolating the *placement*
/// randomness from parity distribution exactly as the paper proposes.
///
/// Placement: each stripe picks the `k` disks with the most remaining
/// capacity (ties shuffled randomly), which guarantees exact coverage
/// for any `k ≤ v` — the classic longest-processing-time argument.
pub fn random_layout(v: usize, k: usize, rows: usize, seed: u64) -> Result<Layout, AssignError> {
    assert!(k >= 2 && k <= v, "need 2 <= k <= v");
    assert_eq!((rows * v) % k, 0, "k must divide rows·v for exact coverage");
    let b = rows * v / k;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<usize> = vec![rows; v];
    let mut next: Vec<u32> = vec![0; v];
    let mut stripes = Vec::with_capacity(b);
    for _ in 0..b {
        // Order disks by remaining capacity descending, random tiebreak.
        let mut order: Vec<usize> = (0..v).collect();
        order.shuffle(&mut rng);
        order.sort_by_key(|&d| std::cmp::Reverse(remaining[d]));
        let chosen = &order[..k];
        let units: Vec<StripeUnit> = chosen
            .iter()
            .map(|&d| {
                remaining[d] -= 1;
                let u = StripeUnit { disk: d as u32, offset: next[d] };
                next[d] += 1;
                u
            })
            .collect();
        stripes.push(units);
    }
    debug_assert!(remaining.iter().all(|&r| r == 0));
    StripePartition::new(v, rows, stripes).assign_parity()
}

/// A fully uniform variant: stripes sample `k` distinct disks uniformly,
/// retrying when a disk is full. Can fail to terminate for adversarial
/// parameters, so attempts are bounded; falls back to the balanced
/// sampler above on exhaustion.
pub fn random_layout_uniform(
    v: usize,
    k: usize,
    rows: usize,
    seed: u64,
) -> Result<Layout, AssignError> {
    assert!(k >= 2 && k <= v);
    assert_eq!((rows * v) % k, 0);
    let b = rows * v / k;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<usize> = vec![rows; v];
    let mut next: Vec<u32> = vec![0; v];
    let mut stripes: Vec<Vec<StripeUnit>> = Vec::with_capacity(b);
    'outer: for _ in 0..b {
        for _attempt in 0..1000 {
            let mut pick: Vec<usize> = (0..v).filter(|&d| remaining[d] > 0).collect();
            if pick.len() < k {
                break;
            }
            pick.shuffle(&mut rng);
            pick.truncate(k);
            // Accept with probability proportional to residual capacity to
            // avoid dead-ends near the end; simple heuristic: always accept
            // unless it would strand capacity (some disk left with more
            // remaining than stripes left can absorb).
            let stripes_left = b - stripes.len() - 1;
            let strands = (0..v).any(|d| {
                let rem = remaining[d] - pick.contains(&d) as usize;
                rem > stripes_left
            });
            if strands && rng.random_bool(0.9) {
                continue;
            }
            let units: Vec<StripeUnit> = pick
                .iter()
                .map(|&d| {
                    remaining[d] -= 1;
                    let u = StripeUnit { disk: d as u32, offset: next[d] };
                    next[d] += 1;
                    u
                })
                .collect();
            stripes.push(units);
            continue 'outer;
        }
        // Exhausted: restart with the safe sampler.
        return random_layout(v, k, rows, seed ^ 0x9e3779b97f4a7c15);
    }
    StripePartition::new(v, rows, stripes).assign_parity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;

    #[test]
    fn random_layout_valid_and_parity_balanced() {
        let l = random_layout(10, 4, 20, 1).unwrap();
        assert_eq!(l.v(), 10);
        assert_eq!(l.size(), 20);
        assert_eq!(l.b(), 50);
        let r = QualityReport::measure(&l);
        assert!(r.parity_nearly_balanced(), "flow assignment guarantees ±1");
        assert_eq!(l.stripe_size_range(), (4, 4));
    }

    #[test]
    fn random_layout_deterministic_per_seed() {
        let a = random_layout(8, 3, 9, 7).unwrap();
        let b = random_layout(8, 3, 9, 7).unwrap();
        assert_eq!(a.stripes().len(), b.stripes().len());
        for (x, y) in a.stripes().iter().zip(b.stripes()) {
            assert_eq!(x.units(), y.units());
        }
        let c = random_layout(8, 3, 9, 8).unwrap();
        let differs = a.stripes().iter().zip(c.stripes()).any(|(x, y)| x.units() != y.units());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn random_workload_imbalanced_but_bounded() {
        // Random layouts have uneven pair coverage (that is the point of
        // the comparison) but workloads stay in (0, 1].
        let l = random_layout(12, 3, 30, 3).unwrap();
        let r = QualityReport::measure(&l);
        assert!(r.reconstruction_workload.1 <= 1.0);
        assert!(r.reconstruction_workload.1 > 0.0);
    }

    #[test]
    fn uniform_variant_also_valid() {
        let l = random_layout_uniform(9, 3, 12, 11).unwrap();
        assert_eq!(l.v(), 9);
        assert_eq!(l.size(), 12);
        let r = QualityReport::measure(&l);
        assert!(r.parity_nearly_balanced());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn coverage_divisibility_enforced() {
        let _ = random_layout(5, 3, 7, 0);
    }
}
