//! Layout serialization: a stable JSON exchange format so generated
//! layouts can be shipped to an array controller (the paper's lookup
//! table, Condition 4) or archived alongside experiment results.

use crate::layout::{Layout, LayoutError, Stripe, StripeUnit};
use serde::{Deserialize, Serialize};

/// The serialized form of a layout: version-tagged, minimal, and
/// independent of in-memory representation details.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct LayoutSpec {
    /// Format version (currently 1).
    pub version: u32,
    /// Number of disks.
    pub v: usize,
    /// Units per disk.
    pub size: usize,
    /// Stripes as `(units, parity_slot)`, units as `(disk, offset)`.
    pub stripes: Vec<(Vec<(u32, u32)>, u32)>,
}

/// Errors when decoding a layout.
#[derive(Debug)]
pub enum CodecError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// The spec version is unsupported.
    UnsupportedVersion(u32),
    /// The decoded stripes do not form a valid layout.
    Invalid(LayoutError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Json(e) => write!(f, "malformed layout JSON: {e}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported layout version {v}"),
            CodecError::Invalid(e) => write!(f, "decoded layout invalid: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl LayoutSpec {
    /// Captures a layout.
    pub fn from_layout(layout: &Layout) -> Self {
        LayoutSpec {
            version: 1,
            v: layout.v(),
            size: layout.size(),
            stripes: layout
                .stripes()
                .iter()
                .map(|s| {
                    (s.units().iter().map(|u| (u.disk, u.offset)).collect(), s.parity_slot() as u32)
                })
                .collect(),
        }
    }

    /// Reconstructs (and re-validates) the layout.
    pub fn to_layout(&self) -> Result<Layout, CodecError> {
        if self.version != 1 {
            return Err(CodecError::UnsupportedVersion(self.version));
        }
        let stripes = self
            .stripes
            .iter()
            .map(|(units, parity)| {
                Stripe::new(
                    units.iter().map(|&(d, o)| StripeUnit { disk: d, offset: o }).collect(),
                    *parity as usize,
                )
            })
            .collect();
        Layout::from_stripes(self.v, self.size, stripes).map_err(CodecError::Invalid)
    }
}

/// Serializes a layout to JSON.
pub fn to_json(layout: &Layout) -> String {
    serde_json::to_string(&LayoutSpec::from_layout(layout)).expect("spec is always serializable")
}

/// Deserializes and validates a layout from JSON.
pub fn from_json(json: &str) -> Result<Layout, CodecError> {
    let spec: LayoutSpec = serde_json::from_str(json).map_err(CodecError::Json)?;
    spec.to_layout()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;
    use crate::ring_layout::RingLayout;

    #[test]
    fn roundtrip_preserves_everything() {
        let rl = RingLayout::for_v_k(9, 4);
        let json = to_json(rl.layout());
        let back = from_json(&json).unwrap();
        assert_eq!(back.v(), 9);
        assert_eq!(back.size(), rl.layout().size());
        assert_eq!(back.b(), rl.layout().b());
        for (a, b) in rl.layout().stripes().iter().zip(back.stripes()) {
            assert_eq!(a.units(), b.units());
            assert_eq!(a.parity_slot(), b.parity_slot());
        }
        // metrics identical
        let qa = QualityReport::measure(rl.layout());
        let qb = QualityReport::measure(&back);
        assert_eq!(qa.parity_units, qb.parity_units);
    }

    #[test]
    fn corrupted_json_rejected() {
        assert!(matches!(from_json("not json"), Err(CodecError::Json(_))));
    }

    #[test]
    fn invalid_layout_rejected() {
        // A spec whose stripes double-cover a unit must not validate.
        let spec = LayoutSpec {
            version: 1,
            v: 2,
            size: 1,
            stripes: vec![(vec![(0, 0), (1, 0)], 0), (vec![(0, 0)], 0)],
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(matches!(from_json(&json), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut spec = LayoutSpec::from_layout(RingLayout::for_v_k(5, 2).layout());
        spec.version = 99;
        assert!(matches!(spec.to_layout(), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn spec_is_stable_json() {
        let rl = RingLayout::for_v_k(4, 3);
        let json = to_json(rl.layout());
        assert!(json.contains("\"version\":1"));
        assert!(json.contains("\"v\":4"));
    }
}
