//! The data-layout model: disks divided into units, units grouped into
//! parity stripes (Section 1 of the paper).
//!
//! A [`Layout`] assigns every unit of a `v × size` disk array to exactly
//! one stripe, with at most one unit of any stripe per disk (Condition 1:
//! single-disk failures stay reconstructable), and marks one unit per
//! stripe as parity.

use std::fmt;

/// The paper's feasibility threshold: layouts needing more than ~10,000
/// units (tracks) per disk are considered infeasible (Condition 4).
pub const DEFAULT_FEASIBILITY_LIMIT: usize = 10_000;

/// A single unit position in the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StripeUnit {
    /// Disk index, `0..v`.
    pub disk: u32,
    /// Unit offset within the disk, `0..size`.
    pub offset: u32,
}

impl StripeUnit {
    /// Convenience constructor.
    pub fn new(disk: usize, offset: usize) -> Self {
        StripeUnit { disk: disk as u32, offset: offset as u32 }
    }
}

/// Role of a unit within its stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitRole {
    /// Holds client data.
    Data,
    /// Holds the XOR of the stripe's data units.
    Parity,
}

/// A parity stripe: a set of units (at most one per disk), one of which
/// is the parity unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stripe {
    units: Vec<StripeUnit>,
    parity: u32,
}

impl Stripe {
    /// Creates a stripe; `parity` indexes into `units`.
    pub fn new(units: Vec<StripeUnit>, parity: usize) -> Self {
        assert!(parity < units.len(), "parity slot out of range");
        Stripe { units, parity: parity as u32 }
    }

    /// All units, in construction order.
    pub fn units(&self) -> &[StripeUnit] {
        &self.units
    }

    /// Number of units (the stripe's `k_s`).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True for the degenerate empty stripe (never produced by valid layouts).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Index of the parity unit within [`units`](Self::units).
    pub fn parity_slot(&self) -> usize {
        self.parity as usize
    }

    /// The parity unit itself.
    pub fn parity_unit(&self) -> StripeUnit {
        self.units[self.parity as usize]
    }

    /// Iterator over the data (non-parity) units.
    pub fn data_units(&self) -> impl Iterator<Item = StripeUnit> + '_ {
        let p = self.parity as usize;
        self.units.iter().enumerate().filter_map(move |(i, &u)| (i != p).then_some(u))
    }

    /// True when the stripe places a unit on `disk`.
    pub fn crosses(&self, disk: usize) -> bool {
        self.units.iter().any(|u| u.disk as usize == disk)
    }
}

/// Back-reference from a unit to its stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnitRef {
    /// Stripe index within the layout.
    pub stripe: u32,
    /// Slot within the stripe's unit list.
    pub slot: u32,
}

/// Validation failures for layouts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// A stripe unit lies outside the `v × size` array.
    UnitOutOfRange {
        /// Offending stripe.
        stripe: usize,
        /// Offending unit.
        unit: StripeUnit,
    },
    /// Two stripes (or one stripe twice) claim the same unit.
    DuplicateCoverage {
        /// The doubly-claimed unit.
        unit: StripeUnit,
    },
    /// Some unit belongs to no stripe.
    MissingCoverage {
        /// The orphaned unit.
        unit: StripeUnit,
    },
    /// A stripe has two units on one disk (violates Condition 1).
    TwoUnitsOneDisk {
        /// Offending stripe.
        stripe: usize,
        /// The disk carrying two of its units.
        disk: usize,
    },
    /// A stripe is empty.
    EmptyStripe {
        /// Offending stripe index.
        stripe: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnitOutOfRange { stripe, unit } => {
                write!(f, "stripe {stripe} references out-of-range unit {unit:?}")
            }
            LayoutError::DuplicateCoverage { unit } => {
                write!(f, "unit {unit:?} is covered by more than one stripe")
            }
            LayoutError::MissingCoverage { unit } => {
                write!(f, "unit {unit:?} is covered by no stripe")
            }
            LayoutError::TwoUnitsOneDisk { stripe, disk } => {
                write!(f, "stripe {stripe} has two units on disk {disk} (Condition 1 violated)")
            }
            LayoutError::EmptyStripe { stripe } => write!(f, "stripe {stripe} is empty"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// A complete, validated parity-declustered data layout.
#[derive(Clone, Debug)]
pub struct Layout {
    v: usize,
    size: usize,
    stripes: Vec<Stripe>,
    /// `unit_map[disk * size + offset]` → owning stripe and slot.
    unit_map: Vec<UnitRef>,
}

impl Layout {
    /// Builds and validates a layout from its stripes.
    pub fn from_stripes(
        v: usize,
        size: usize,
        stripes: Vec<Stripe>,
    ) -> Result<Layout, LayoutError> {
        assert!(v >= 1 && size >= 1, "array must be nonempty");
        let sentinel = UnitRef { stripe: u32::MAX, slot: u32::MAX };
        let mut unit_map = vec![sentinel; v * size];
        for (si, stripe) in stripes.iter().enumerate() {
            if stripe.is_empty() {
                return Err(LayoutError::EmptyStripe { stripe: si });
            }
            let mut disks_seen: Vec<u32> = Vec::with_capacity(stripe.len());
            for (slot, &u) in stripe.units().iter().enumerate() {
                if u.disk as usize >= v || u.offset as usize >= size {
                    return Err(LayoutError::UnitOutOfRange { stripe: si, unit: u });
                }
                if disks_seen.contains(&u.disk) {
                    return Err(LayoutError::TwoUnitsOneDisk { stripe: si, disk: u.disk as usize });
                }
                disks_seen.push(u.disk);
                let idx = u.disk as usize * size + u.offset as usize;
                if unit_map[idx].stripe != u32::MAX {
                    return Err(LayoutError::DuplicateCoverage { unit: u });
                }
                unit_map[idx] = UnitRef { stripe: si as u32, slot: slot as u32 };
            }
        }
        if let Some(idx) = unit_map.iter().position(|r| r.stripe == u32::MAX) {
            return Err(LayoutError::MissingCoverage {
                unit: StripeUnit::new(idx / size, idx % size),
            });
        }
        Ok(Layout { v, size, stripes, unit_map })
    }

    /// Number of disks `v`.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Units per disk (the layout *size* `s`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The stripes.
    pub fn stripes(&self) -> &[Stripe] {
        &self.stripes
    }

    /// Number of stripes `b`.
    pub fn b(&self) -> usize {
        self.stripes.len()
    }

    /// Stripe/slot owning the unit at `(disk, offset)`.
    pub fn unit_ref(&self, disk: usize, offset: usize) -> UnitRef {
        self.unit_map[disk * self.size + offset]
    }

    /// Role of the unit at `(disk, offset)`.
    pub fn role(&self, disk: usize, offset: usize) -> UnitRole {
        let r = self.unit_ref(disk, offset);
        if self.stripes[r.stripe as usize].parity_slot() == r.slot as usize {
            UnitRole::Parity
        } else {
            UnitRole::Data
        }
    }

    /// Total data (non-parity) units in the layout.
    pub fn data_unit_count(&self) -> usize {
        self.stripes.iter().map(|s| s.len() - 1).sum()
    }

    /// Minimum and maximum stripe size.
    pub fn stripe_size_range(&self) -> (usize, usize) {
        let min = self.stripes.iter().map(Stripe::len).min().unwrap_or(0);
        let max = self.stripes.iter().map(Stripe::len).max().unwrap_or(0);
        (min, max)
    }

    /// Condition 4 feasibility: `size ≤ limit` (default 10,000 tracks).
    pub fn is_feasible(&self, limit: usize) -> bool {
        self.size <= limit
    }

    /// ASCII rendering: rows = offsets, columns = disks; each cell shows
    /// the stripe index, parity cells marked `*`. Truncated to
    /// `max_rows` offsets. Reproduces the style of the paper's Figs 1–3.
    pub fn ascii_art(&self, max_rows: usize) -> String {
        use std::fmt::Write;
        let width = (self.b().max(1).ilog10() as usize) + 2;
        let mut out = String::new();
        write!(out, "{:>6} ", "").unwrap();
        for d in 0..self.v {
            write!(out, "{:>width$}", format!("D{d}")).unwrap();
        }
        out.push('\n');
        for off in 0..self.size.min(max_rows) {
            write!(out, "{off:>5}: ").unwrap();
            for d in 0..self.v {
                let r = self.unit_ref(d, off);
                let mark = if self.role(d, off) == UnitRole::Parity { "*" } else { "" };
                write!(out, "{:>width$}", format!("{}{mark}", r.stripe)).unwrap();
            }
            out.push('\n');
        }
        if self.size > max_rows {
            writeln!(out, "  ... ({} more rows)", self.size - max_rows).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(d: usize, o: usize) -> StripeUnit {
        StripeUnit::new(d, o)
    }

    /// 2 disks × 2 units: two mirrored stripes.
    fn tiny_layout() -> Layout {
        Layout::from_stripes(
            2,
            2,
            vec![
                Stripe::new(vec![unit(0, 0), unit(1, 0)], 1),
                Stripe::new(vec![unit(0, 1), unit(1, 1)], 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_layout_accepted() {
        let l = tiny_layout();
        assert_eq!(l.v(), 2);
        assert_eq!(l.size(), 2);
        assert_eq!(l.b(), 2);
        assert_eq!(l.data_unit_count(), 2);
        assert_eq!(l.stripe_size_range(), (2, 2));
    }

    #[test]
    fn roles_and_unit_refs() {
        let l = tiny_layout();
        assert_eq!(l.role(1, 0), UnitRole::Parity);
        assert_eq!(l.role(0, 0), UnitRole::Data);
        assert_eq!(l.role(0, 1), UnitRole::Parity);
        let r = l.unit_ref(1, 1);
        assert_eq!(r.stripe, 1);
        assert_eq!(l.stripes()[1].units()[r.slot as usize], unit(1, 1));
    }

    #[test]
    fn missing_coverage_detected() {
        let err = Layout::from_stripes(2, 1, vec![Stripe::new(vec![unit(0, 0)], 0)]).unwrap_err();
        assert_eq!(err, LayoutError::MissingCoverage { unit: unit(1, 0) });
    }

    #[test]
    fn duplicate_coverage_detected() {
        let err = Layout::from_stripes(
            1,
            1,
            vec![Stripe::new(vec![unit(0, 0)], 0), Stripe::new(vec![unit(0, 0)], 0)],
        )
        .unwrap_err();
        assert_eq!(err, LayoutError::DuplicateCoverage { unit: unit(0, 0) });
    }

    #[test]
    fn two_units_one_disk_detected() {
        let err = Layout::from_stripes(
            2,
            2,
            vec![
                Stripe::new(vec![unit(0, 0), unit(0, 1)], 0),
                Stripe::new(vec![unit(1, 0), unit(1, 1)], 0),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, LayoutError::TwoUnitsOneDisk { stripe: 0, disk: 0 }));
    }

    #[test]
    fn out_of_range_detected() {
        let err = Layout::from_stripes(1, 1, vec![Stripe::new(vec![unit(0, 5)], 0)]).unwrap_err();
        assert!(matches!(err, LayoutError::UnitOutOfRange { .. }));
    }

    #[test]
    fn stripe_accessors() {
        let s = Stripe::new(vec![unit(0, 0), unit(1, 0), unit(2, 0)], 1);
        assert_eq!(s.parity_unit(), unit(1, 0));
        let data: Vec<_> = s.data_units().collect();
        assert_eq!(data, vec![unit(0, 0), unit(2, 0)]);
        assert!(s.crosses(2));
        assert!(!s.crosses(3));
    }

    #[test]
    #[should_panic(expected = "parity slot out of range")]
    fn bad_parity_slot_panics() {
        Stripe::new(vec![unit(0, 0)], 1);
    }

    #[test]
    fn feasibility_threshold() {
        let l = tiny_layout();
        assert!(l.is_feasible(DEFAULT_FEASIBILITY_LIMIT));
        assert!(!l.is_feasible(1));
    }

    #[test]
    fn ascii_art_renders() {
        let art = tiny_layout().ascii_art(10);
        assert!(art.contains("D0"));
        assert!(art.contains('*'));
        assert_eq!(art.lines().count(), 3); // header + 2 rows
    }
}
