//! Classic layout constructions from block designs: the full-width RAID5
//! layout (the paper's Fig. 1 baseline) and the Holland–Gibson
//! BIBD-with-rotated-parity layout (Fig. 3).

use crate::layout::{Layout, Stripe, StripeUnit};
use pdl_design::BlockDesign;

/// Per-disk next-free-offset allocator shared by the block-placement
/// constructions: stripes claim units on their disks in iteration order.
pub(crate) struct OffsetAllocator {
    next: Vec<u32>,
}

impl OffsetAllocator {
    pub(crate) fn new(v: usize) -> Self {
        OffsetAllocator { next: vec![0; v] }
    }

    pub(crate) fn take(&mut self, disk: usize) -> StripeUnit {
        let off = self.next[disk];
        self.next[disk] += 1;
        StripeUnit { disk: disk as u32, offset: off }
    }
}

/// The RAID5 "one stripe per row" layout (Fig. 1 generalized): `rows`
/// full-width stripes over `v` disks, parity rotating left-symmetrically
/// (row `i`'s parity on disk `i mod v`). Reconstruction of any disk must
/// read 100% of every survivor — the problem parity declustering solves.
pub fn raid5_layout(v: usize, rows: usize) -> Layout {
    assert!(v >= 2 && rows >= 1);
    let stripes = (0..rows)
        .map(|row| {
            let units = (0..v).map(|d| StripeUnit::new(d, row)).collect();
            Stripe::new(units, row % v)
        })
        .collect();
    Layout::from_stripes(v, rows, stripes).expect("RAID5 construction is always valid")
}

/// The Holland–Gibson construction (Section 1, Fig. 3): `k` copies of a
/// BIBD, with the parity unit at tuple position `c` in copy `c`. The
/// result has size `k·r` and perfectly balanced parity and
/// reconstruction workload.
///
/// Requires a design with uniform block size and equal replication
/// (any BIBD qualifies); panics otherwise.
pub fn holland_gibson_layout(design: &BlockDesign) -> Layout {
    let v = design.v();
    let k = design.block_size().expect("design must have uniform block size");
    let reps = design.replication_counts();
    let r = reps[0];
    assert!(
        reps.iter().all(|&c| c == r),
        "design must be equireplicate for the Holland-Gibson construction"
    );
    let mut alloc = OffsetAllocator::new(v);
    let mut stripes = Vec::with_capacity(k * design.b());
    for copy in 0..k {
        for block in design.blocks() {
            let units: Vec<StripeUnit> = block.iter().map(|&d| alloc.take(d)).collect();
            stripes.push(Stripe::new(units, copy));
        }
    }
    Layout::from_stripes(v, k * r, stripes).expect("Holland-Gibson construction is always valid")
}

/// A single copy of a design with parity fixed at one tuple position —
/// the naive layout whose parity imbalance motivates both the k-copy
/// rotation above and the Section 4 flow method.
pub fn single_copy_layout(design: &BlockDesign, parity_slot: usize) -> Layout {
    let v = design.v();
    let k = design.block_size().expect("design must have uniform block size");
    assert!(parity_slot < k, "parity slot must be within blocks");
    let reps = design.replication_counts();
    let r = reps[0];
    assert!(reps.iter().all(|&c| c == r), "design must be equireplicate");
    let mut alloc = OffsetAllocator::new(v);
    let stripes = design
        .blocks()
        .iter()
        .map(|block| {
            let units: Vec<StripeUnit> = block.iter().map(|&d| alloc.take(d)).collect();
            Stripe::new(units, parity_slot)
        })
        .collect();
    Layout::from_stripes(v, r, stripes).expect("single-copy construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{parity_counts, reconstruction_workload_range, QualityReport};
    use pdl_design::complete_design;

    #[test]
    fn raid5_basics() {
        let l = raid5_layout(4, 8);
        assert_eq!(l.v(), 4);
        assert_eq!(l.size(), 8);
        assert_eq!(l.b(), 8);
        // 8 rows over 4 disks → 2 parity units each.
        assert_eq!(parity_counts(&l), vec![2, 2, 2, 2]);
        let (lo, hi) = reconstruction_workload_range(&l);
        assert_eq!((lo, hi), (1.0, 1.0));
    }

    #[test]
    fn raid5_unbalanced_when_rows_not_multiple() {
        let l = raid5_layout(4, 6);
        let c = parity_counts(&l);
        assert_eq!(c.iter().sum::<usize>(), 6);
        assert_eq!(*c.iter().max().unwrap() - *c.iter().min().unwrap(), 1);
    }

    #[test]
    fn fig3_holland_gibson_v4_k3() {
        // Fig. 3 of the paper: complete design for v=4, k=3, tripled.
        let d = complete_design(4, 3, 100);
        let l = holland_gibson_layout(&d);
        assert_eq!(l.size(), 9); // k·r = 3·3
        assert_eq!(l.b(), 12); // k·b = 3·4
        let r = QualityReport::measure(&l);
        assert!(r.parity_balanced(), "k-copy rotation balances parity exactly");
        assert!(r.reconstruction_balanced());
        // parity overhead = 1/k
        assert!((r.parity_overhead.1 - 1.0 / 3.0).abs() < 1e-12);
        // reconstruction workload = (k-1)/(v-1) = 2/3
        assert!((r.reconstruction_workload.1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hg_on_fano_plane() {
        let fano = pdl_design::theorem6_design(7, 7); // degenerate; use ring instead
        let _ = fano;
        let d = pdl_design::theorem4_design(7, 3).design;
        let l = holland_gibson_layout(&d);
        let r = QualityReport::measure(&l);
        assert!(r.parity_balanced());
        assert!(r.reconstruction_balanced());
        assert!((r.reconstruction_workload.0 - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_copy_parity_imbalance() {
        // One copy of the complete design v=4,k=3 with parity at slot 0:
        // disk 3 never holds parity at slot 0 → imbalance.
        let d = complete_design(4, 3, 100);
        let l = single_copy_layout(&d, 0);
        assert_eq!(l.size(), 3);
        let r = QualityReport::measure(&l);
        assert!(!r.parity_balanced());
        // Reconstruction workload is still perfectly balanced (BIBD).
        assert!(r.reconstruction_balanced());
    }

    #[test]
    fn hg_size_formula() {
        // size = k·r for several designs.
        for (v, k) in [(5usize, 2usize), (6, 3), (7, 3)] {
            let d = complete_design(v, k, 1_000_000);
            let p = d.verify_bibd().unwrap();
            let l = holland_gibson_layout(&d);
            assert_eq!(l.size(), k * p.r);
        }
    }

    #[test]
    #[should_panic(expected = "equireplicate")]
    fn hg_rejects_uneven_design() {
        let d = pdl_design::BlockDesign::new(3, vec![vec![0, 1], vec![0, 2], vec![0, 1]]);
        holland_gibson_layout(&d);
    }
}
