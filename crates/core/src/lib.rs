//! # pdl-core
//!
//! Parity-declustered data layouts for disk arrays — the primary
//! contribution of Schwabe & Sutherland (SPAA'94 / JCSS'96), built on
//! the `pdl-algebra`, `pdl-design`, and `pdl-flow` substrates:
//!
//! * the [`Layout`] model with Conditions 1–4 validation and metrics
//!   ([`metrics`]);
//! * classic constructions: RAID5 full-width stripes (Fig. 1) and the
//!   Holland–Gibson k-copy BIBD layout (Fig. 3) in [`hg`];
//! * **ring-based layouts** — single-copy, perfectly balanced
//!   ([`ring_layout`]), with Theorem 8/9 disk removal;
//! * the **stairway transformation** growing layouts to nearby array
//!   sizes with bounded imbalance (Theorems 10–12, [`stairway`]);
//! * **flow-based parity assignment** achieving the optimal ±1 parity
//!   balance on any layout (Theorems 13–14, Corollaries 15–17,
//!   [`parity_assign`]);
//! * Condition-4 address mapping ([`mapping`]), feasibility sweeps
//!   ([`feasibility`]), and the Section-5 extensions: distributed
//!   sparing ([`sparing`]), extendible layouts ([`extendible`]), and
//!   randomized baselines ([`randomized`]).
//!
//! ```
//! use pdl_core::{RingLayout, QualityReport};
//!
//! // A perfectly balanced declustered layout for 9 disks, stripes of 4.
//! let rl = RingLayout::for_v_k(9, 4);
//! let q = QualityReport::measure(rl.layout());
//! assert!(q.parity_balanced());
//! assert!(q.reconstruction_balanced());
//! assert_eq!(rl.layout().size(), 4 * 8); // k(v-1) units per disk
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod designer;
pub mod double_parity;
pub mod extendible;
pub mod feasibility;
pub mod hetero;
pub mod hg;
pub mod layout;
pub mod mapping;
pub mod metrics;
pub mod parallelism;
pub mod parity_assign;
pub mod randomized;
pub mod reshape;
pub mod ring_layout;
pub mod sparing;
pub mod stairway;

pub use codec::{from_json, to_json, CodecError, LayoutSpec};
pub use designer::{best_bibd, build_layout};
pub use double_parity::DoubleParityLayout;
pub use extendible::{extend_via_stairway, relayout_cost, ExtensionReport};
pub use feasibility::{
    best_bibd_params, count_feasible, layout_size, stairway_params_exist, stairway_smallest_source,
    stairway_source_for, Method,
};
pub use hetero::{mixed_size_array, HeteroArray, HeteroError};
pub use hg::{holland_gibson_layout, raid5_layout, single_copy_layout};
pub use layout::{
    Layout, LayoutError, Stripe, StripeUnit, UnitRef, UnitRole, DEFAULT_FEASIBILITY_LIMIT,
};
pub use mapping::{verify_mapper, AddressMapper};
pub use metrics::{
    crossing_matrix, parity_counts, parity_overhead_range, parity_overheads,
    reconstruction_workload_range, reconstruction_workloads, QualityReport,
};
pub use parallelism::{large_write_score, parallelism_score, parallelism_worst, ParallelismReport};
pub use parity_assign::{
    copies_for_perfect_parity, minimal_balanced_layout, AssignError, StripePartition,
};
pub use randomized::{random_layout, random_layout_uniform};
pub use reshape::{plan_add, plan_remove, ReshapeMethod, ReshapePlan, ReshapePlanError};
pub use ring_layout::{max_safe_removals, RemovalError, RingLayout};
pub use sparing::{RebuildPlan, SparedLayout, SparedRole};
pub use stairway::{stairway_layout, StairwayError, StairwayParams};
