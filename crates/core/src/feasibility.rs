//! Feasibility analysis: which `(v, k)` pairs admit layouts of size at
//! most ~10,000 units under each construction — the paper's headline
//! motivation ("greatly increase the number of feasible layouts").
//!
//! Sizes are evaluated in closed form (no construction needed), so whole
//! `(v, k)` planes can be swept cheaply.

use crate::stairway::StairwayParams;
use pdl_algebra::nt::{gcd, is_prime_power, lcm, min_prime_power_factor};
use pdl_design::binomial;

/// The layout-construction families compared throughout the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Complete block design + Holland–Gibson k-copy balancing.
    CompleteHG,
    /// Best of the paper's BIBD constructions (Thm 4/5/6) + k-copy balancing.
    BibdHG,
    /// Best BIBD + the minimal `lcm(b,v)/b`-copy flow balancing (Section 4).
    BibdLcmMinimal,
    /// Best BIBD, single copy, flow-assigned parity (±1 imbalance allowed).
    BibdSingleCopy,
    /// Ring-based layout (Section 3): single copy, perfect balance.
    RingBased,
    /// Stairway transformation from the nearest prime power below `v`.
    Stairway,
}

impl Method {
    /// All methods in presentation order.
    pub const ALL: [Method; 6] = [
        Method::CompleteHG,
        Method::BibdHG,
        Method::BibdLcmMinimal,
        Method::BibdSingleCopy,
        Method::RingBased,
        Method::Stairway,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::CompleteHG => "complete+HGk",
            Method::BibdHG => "bibd+HGk",
            Method::BibdLcmMinimal => "bibd+lcm",
            Method::BibdSingleCopy => "bibd+flow1",
            Method::RingBased => "ring",
            Method::Stairway => "stairway",
        }
    }
}

/// The smallest `(b, r)` our constructions achieve at `(v, k)`: the best
/// of Theorems 4, 5, 6 for prime-power `v`, plus Steiner triple systems
/// for `k = 3` on any `v ≡ 1, 3 (mod 6)`.
pub fn best_bibd_params(v: u64, k: u64) -> Option<(u64, u64)> {
    if k < 2 || k > v {
        return None;
    }
    let mut best: Option<(u64, u64)> = None;
    if is_prime_power(v) {
        let full_b = v * (v - 1);
        let mut best_f = gcd(v - 1, k - 1).max(gcd(v - 1, k)); // Thms 4 & 5
        if is_prime_power(k) && is_power_of(v, k) {
            best_f = best_f.max(k * (k - 1)); // Thm 6
        }
        best = Some((full_b / best_f, k * (v - 1) / best_f));
    }
    if k == 3 && pdl_design::sts_exists(v as usize) {
        let sts = (v * (v - 1) / 6, (v - 1) / 2);
        best = Some(match best {
            Some(prev) if prev.0 <= sts.0 => prev,
            _ => sts,
        });
    }
    best
}

/// True iff `v = k^m` for some `m ≥ 1`.
pub fn is_power_of(v: u64, k: u64) -> bool {
    pdl_design::log_exact(v, k).is_some()
}

/// Closed-form layout size (units per disk) for a method at `(v, k)`,
/// or `None` when the method is inapplicable.
pub fn layout_size(method: Method, v: u64, k: u64) -> Option<u128> {
    if v < 2 || k < 2 || k > v {
        return None;
    }
    match method {
        Method::CompleteHG => {
            // size = k · r, r = C(v-1, k-1)
            Some(k as u128 * binomial(v - 1, k - 1))
        }
        Method::BibdHG => best_bibd_params(v, k).map(|(_, r)| (k * r) as u128),
        Method::BibdLcmMinimal => {
            best_bibd_params(v, k).map(|(b, r)| (r * (lcm(b, v) / b)) as u128)
        }
        Method::BibdSingleCopy => best_bibd_params(v, k).map(|(_, r)| r as u128),
        Method::RingBased => (k <= min_prime_power_factor(v)).then(|| (k * (v - 1)) as u128),
        Method::Stairway => stairway_smallest_source(v as usize, k as usize)
            .map(|(_, p)| p.size(k as usize) as u128),
    }
}

/// Finds a source `q < v` for the stairway transformation: the largest
/// prime power `q` with `k ≤ q` admitting valid `(c, w)` parameters.
/// Larger `q` means smaller imbalance but a larger layout (more copies);
/// see [`stairway_smallest_source`] for the size-optimal choice.
pub fn stairway_source_for(v: usize, k: usize) -> Option<(usize, StairwayParams)> {
    if v < 3 {
        return None;
    }
    (k.max(2)..v)
        .rev()
        .filter(|&q| is_prime_power(q as u64))
        .find_map(|q| StairwayParams::solve(q, v).map(|p| (q, p)))
}

/// The size-optimal stairway source: the prime power `q ∈ [k, v)` whose
/// valid parameters minimize the layout size `k(c−1)(q−1)` — this is
/// the paper's size-vs-imbalance trade-off resolved for feasibility.
pub fn stairway_smallest_source(v: usize, k: usize) -> Option<(usize, StairwayParams)> {
    if v < 3 {
        return None;
    }
    (k.max(2)..v)
        .filter(|&q| is_prime_power(q as u64))
        .filter_map(|q| StairwayParams::solve(q, v).map(|p| (q, p)))
        .min_by_key(|(_, p)| p.size(k))
}

/// Like [`stairway_source_for`] but ignoring `k` (the Section 3.2 claim
/// concerns existence of `q`, `c`, `w` alone).
pub fn stairway_params_exist(v: usize) -> Option<(usize, StairwayParams)> {
    stairway_source_for(v, 2)
}

/// Sweeps the `(v, k)` plane and counts feasible pairs per method
/// (`size ≤ limit`). Returns `counts[method_index]` aligned with
/// [`Method::ALL`].
pub fn count_feasible(
    v_range: std::ops::RangeInclusive<u64>,
    k_max: u64,
    limit: u128,
) -> [usize; 6] {
    let mut counts = [0usize; 6];
    for v in v_range {
        for k in 2..=k_max.min(v) {
            for (mi, &m) in Method::ALL.iter().enumerate() {
                if let Some(size) = layout_size(m, v, k) {
                    if size <= limit {
                        counts[mi] += 1;
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DEFAULT_FEASIBILITY_LIMIT;

    #[test]
    fn complete_design_blows_up() {
        // v=41, k=5 complete: size = 5·C(40,4) = 457,470 — infeasible;
        // the paper's point about complete designs.
        let s = layout_size(Method::CompleteHG, 41, 5).unwrap();
        assert_eq!(s, 5 * 91390);
        assert!(s > DEFAULT_FEASIBILITY_LIMIT as u128);
        // ring-based: 5·40 = 200 — trivially feasible.
        assert_eq!(layout_size(Method::RingBased, 41, 5), Some(200));
    }

    #[test]
    fn best_bibd_prefers_larger_reduction() {
        // v=9, k=3: Thm4 g=gcd(8,2)=2, Thm5 g=gcd(8,3)=1, Thm6 k(k-1)=6.
        let (b, r) = best_bibd_params(9, 3).unwrap();
        assert_eq!((b, r), (12, 4));
        // v=13, k=4: Thm4 g=3, Thm5 g=4 → b=39, r=12.
        let (b, r) = best_bibd_params(13, 4).unwrap();
        assert_eq!((b, r), (39, 12));
    }

    #[test]
    fn single_copy_is_smallest_bibd_layout() {
        for (v, k) in [(9u64, 3u64), (13, 4), (25, 5), (27, 3)] {
            let s1 = layout_size(Method::BibdSingleCopy, v, k).unwrap();
            let sl = layout_size(Method::BibdLcmMinimal, v, k).unwrap();
            let sk = layout_size(Method::BibdHG, v, k).unwrap();
            assert!(s1 <= sl && sl <= sk, "v={v} k={k}: {s1} {sl} {sk}");
        }
    }

    #[test]
    fn sts_fills_k3_on_composite_v() {
        // v = 15 is not a prime power, but STS(15) exists: b=35, r=7.
        assert_eq!(best_bibd_params(15, 3), Some((35, 7)));
        assert_eq!(layout_size(Method::BibdSingleCopy, 15, 3), Some(7));
        // v = 33 = 3·11 likewise.
        assert_eq!(best_bibd_params(33, 3), Some((176, 16)));
        // k ≠ 3 on composite v still has no BIBD construction here.
        assert_eq!(best_bibd_params(15, 4), None);
        // inadmissible v ≡ 5 (mod 6), not a prime power: nothing.
        assert_eq!(best_bibd_params(35, 3), None);
    }

    #[test]
    fn ring_based_needs_k_le_m() {
        assert_eq!(layout_size(Method::RingBased, 12, 3), Some(33));
        assert_eq!(layout_size(Method::RingBased, 12, 4), None); // M(12)=3
        assert_eq!(layout_size(Method::RingBased, 30, 3), None); // M(30)=2
    }

    #[test]
    fn stairway_applies_where_ring_cannot() {
        // v=30: M(v)=2, ring-based limited to k=2; stairway from q=29
        // supports any k ≤ 29.
        let (q, p) = stairway_source_for(30, 5).unwrap();
        assert!(is_prime_power(q as u64) && q >= 5);
        assert_eq!(p.v, 30);
        assert!(layout_size(Method::Stairway, 30, 5).is_some());
    }

    #[test]
    fn stairway_exists_up_to_2000() {
        // Fast slice of the paper's v ≤ 10,000 claim (full check in the
        // claim_v10000 experiment binary).
        for v in 3..=2000usize {
            assert!(stairway_params_exist(v).is_some(), "no stairway params for v={v}");
        }
    }

    #[test]
    fn feasibility_counts_are_ordered() {
        // The paper's narrative: ring/stairway/single-copy methods admit
        // far more feasible layouts than complete designs.
        let counts = count_feasible(4..=100, 16, DEFAULT_FEASIBILITY_LIMIT as u128);
        let idx = |m: Method| Method::ALL.iter().position(|&x| x == m).unwrap();
        assert!(counts[idx(Method::RingBased)] > 0);
        assert!(counts[idx(Method::Stairway)] > counts[idx(Method::CompleteHG)], "{counts:?}");
        assert!(counts[idx(Method::BibdSingleCopy)] >= counts[idx(Method::BibdHG)], "{counts:?}");
    }

    #[test]
    fn method_names_unique() {
        let mut names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
