//! Target-layout planning for array reshaping (Section 5 directions):
//! given a source layout, compute the layout the array should migrate
//! to after adding or removing disks, preferring the constructions
//! that move the least data.
//!
//! Three methods, tried in order of decreasing movement economy:
//!
//! * **Stairway** (Theorems 10–12): when the source is a canonical
//!   ring layout and stairway parameters exist for the target width,
//!   the extension keeps every stripe intact and moves only the top
//!   staircase triangle.
//! * **Ring removal** (Theorems 8–9): when the source is a canonical
//!   ring layout, deleting disks re-homes only the orphaned units and
//!   parity targets.
//! * **Regeneration**: the universal fallback — a fresh ring layout
//!   at the target width. Moves nearly everything, but exists for any
//!   width the ring construction supports and gives exactly uniform
//!   stripe sizes (and therefore the exact `(k−1)/(v−1)` rebuild
//!   fraction).
//!
//! The store's migration engine copies data by *logical address*, so
//! correctness never depends on which method is chosen; the method
//! and its [`ReshapePlan::moved_fraction`] are reporting.

use crate::extendible::relayout_cost;
use crate::layout::Layout;
use crate::ring_layout::RingLayout;
use crate::stairway::stairway_layout;
use pdl_design::{ring_design_exists, RingDesign};
use std::fmt;

/// Which construction produced the target layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReshapeMethod {
    /// Stairway extension of the source ring design (Theorems 10–12).
    Stairway,
    /// Theorem 8/9 disk removal from the source ring design.
    RingRemoval,
    /// Fresh ring layout generated at the target width.
    Regenerated,
}

impl fmt::Display for ReshapeMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReshapeMethod::Stairway => "stairway",
            ReshapeMethod::RingRemoval => "ring-removal",
            ReshapeMethod::Regenerated => "regenerated",
        })
    }
}

/// A computed reshape target: the layout to migrate to, how it was
/// constructed, and how much of the existing data a location-aware
/// migration would have to move.
#[derive(Clone, Debug)]
pub struct ReshapePlan {
    /// The target layout (validated by construction).
    pub layout: Layout,
    /// Fraction of the common logical address range whose physical
    /// location differs between source and target.
    pub moved_fraction: f64,
    /// The construction that produced [`ReshapePlan::layout`].
    pub method: ReshapeMethod,
}

/// Why no target layout could be computed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReshapePlanError {
    /// No supported construction yields a layout at the target width
    /// for the source's stripe size.
    NoTargetLayout {
        /// Requested target disk count.
        v: usize,
        /// Stripe size carried over from the source.
        k: usize,
    },
    /// The request itself is malformed (zero disks added, removing
    /// every disk, ...).
    BadRequest(String),
}

impl fmt::Display for ReshapePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshapePlanError::NoTargetLayout { v, k } => {
                write!(f, "no declustered layout construction for v={v}, k={k}")
            }
            ReshapePlanError::BadRequest(msg) => write!(f, "bad reshape request: {msg}"),
        }
    }
}

impl std::error::Error for ReshapePlanError {}

/// The source's stripe size: the widest stripe (uniform layouts have
/// only one width; removal layouts carry a few width-`k−1` stripes).
fn source_k(src: &Layout) -> usize {
    src.stripe_size_range().1
}

/// Structural equality of two layouts (same disks, size, and exact
/// stripe/unit/parity structure) — detects a canonical ring source.
fn layout_eq(a: &Layout, b: &Layout) -> bool {
    a.v() == b.v()
        && a.size() == b.size()
        && a.b() == b.b()
        && a.stripes().iter().zip(b.stripes()).all(|(sa, sb)| {
            sa.parity_slot() == sb.parity_slot()
                && sa.len() == sb.len()
                && sa
                    .units()
                    .iter()
                    .zip(sb.units())
                    .all(|(ua, ub)| ua.disk == ub.disk && ua.offset == ub.offset)
        })
}

/// The source's ring design, when the source *is* the canonical ring
/// layout for its `(v, k)`.
fn source_ring_design(src: &Layout) -> Option<RingDesign> {
    let (v, k) = (src.v(), source_k(src));
    if !ring_design_exists(v as u64, k as u64) {
        return None;
    }
    let rl = RingLayout::for_v_k(v, k);
    layout_eq(src, rl.layout()).then(|| rl.design().clone())
}

/// The regeneration fallback: a fresh canonical ring layout at width
/// `v` with stripe size `k`.
fn regenerate(v: usize, k: usize) -> Result<Layout, ReshapePlanError> {
    if v <= k || !ring_design_exists(v as u64, k as u64) {
        return Err(ReshapePlanError::NoTargetLayout { v, k });
    }
    Ok(RingLayout::for_v_k(v, k).layout().clone())
}

/// Plans the target layout for growing the array by `added` disks.
pub fn plan_add(src: &Layout, added: usize) -> Result<ReshapePlan, ReshapePlanError> {
    if added == 0 {
        return Err(ReshapePlanError::BadRequest("added == 0".into()));
    }
    let v_tgt = src.v() + added;
    let k = source_k(src);
    if let Some(design) = source_ring_design(src) {
        if let Ok(layout) = stairway_layout(&design, v_tgt) {
            let moved_fraction = relayout_cost(src, &layout);
            return Ok(ReshapePlan { layout, moved_fraction, method: ReshapeMethod::Stairway });
        }
    }
    let layout = regenerate(v_tgt, k)?;
    let moved_fraction = relayout_cost(src, &layout);
    Ok(ReshapePlan { layout, moved_fraction, method: ReshapeMethod::Regenerated })
}

/// Plans the target layout for shrinking the array by deleting the
/// (source-numbered) disks in `removed`. Survivors are renumbered in
/// ascending order, matching the Theorem 8/9 convention.
pub fn plan_remove(src: &Layout, removed: &[usize]) -> Result<ReshapePlan, ReshapePlanError> {
    if removed.is_empty() {
        return Err(ReshapePlanError::BadRequest("removed is empty".into()));
    }
    let mut seen = vec![false; src.v()];
    for &d in removed {
        if d >= src.v() {
            return Err(ReshapePlanError::BadRequest(format!(
                "disk {d} out of range (v = {})",
                src.v()
            )));
        }
        if seen[d] {
            return Err(ReshapePlanError::BadRequest(format!("disk {d} removed twice")));
        }
        seen[d] = true;
    }
    let k = source_k(src);
    let v_tgt = src.v() - removed.len();
    if v_tgt <= k {
        return Err(ReshapePlanError::NoTargetLayout { v: v_tgt, k });
    }
    if let Some(design) = source_ring_design(src) {
        let rl = RingLayout::new(design);
        if let Ok(layout) = rl.remove_disks(removed) {
            let moved_fraction = relayout_cost(src, &layout);
            return Ok(ReshapePlan { layout, moved_fraction, method: ReshapeMethod::RingRemoval });
        }
    }
    let layout = regenerate(v_tgt, k)?;
    let moved_fraction = relayout_cost(src, &layout);
    Ok(ReshapePlan { layout, moved_fraction, method: ReshapeMethod::Regenerated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;

    #[test]
    fn add_from_canonical_ring_prefers_stairway() {
        let src = RingLayout::for_v_k(8, 3);
        let plan = plan_add(src.layout(), 1).unwrap();
        assert_eq!(plan.method, ReshapeMethod::Stairway);
        assert_eq!(plan.layout.v(), 9);
        assert!((0.0..=1.0).contains(&plan.moved_fraction));
    }

    #[test]
    fn add_falls_back_to_regeneration() {
        // 5 → 12 has no stairway parameters (see stairway tests), but
        // the ring construction exists at 12 with k = 3.
        let src = RingLayout::for_v_k(5, 3);
        let plan = plan_add(src.layout(), 7).unwrap();
        assert_eq!(plan.method, ReshapeMethod::Regenerated);
        assert_eq!(plan.layout.v(), 12);
        let q = QualityReport::measure(&plan.layout);
        assert!(q.parity_balanced());
        assert!(q.reconstruction_balanced());
    }

    #[test]
    fn remove_from_canonical_ring_uses_theorem_9() {
        let src = RingLayout::for_v_k(9, 4);
        let plan = plan_remove(src.layout(), &[2]).unwrap();
        assert_eq!(plan.method, ReshapeMethod::RingRemoval);
        assert_eq!(plan.layout.v(), 8);
        assert!((0.0..=1.0).contains(&plan.moved_fraction));
    }

    #[test]
    fn remove_validates_requests() {
        let src = RingLayout::for_v_k(7, 3);
        assert!(matches!(plan_remove(src.layout(), &[]), Err(ReshapePlanError::BadRequest(_))));
        assert!(matches!(plan_remove(src.layout(), &[9]), Err(ReshapePlanError::BadRequest(_))));
        assert!(matches!(plan_remove(src.layout(), &[1, 1]), Err(ReshapePlanError::BadRequest(_))));
        // Shrinking below k + 1 disks leaves no valid layout.
        assert!(matches!(
            plan_remove(src.layout(), &[0, 1, 2, 3]),
            Err(ReshapePlanError::NoTargetLayout { .. })
        ));
    }

    #[test]
    fn add_zero_is_rejected() {
        let src = RingLayout::for_v_k(7, 3);
        assert!(matches!(plan_add(src.layout(), 0), Err(ReshapePlanError::BadRequest(_))));
    }
}
