//! Distributed sparing (Section 5 open problem): reserve one *spare*
//! unit per stripe, spread evenly across the array with the generalized
//! Theorem 14 flow, so a failed disk can be rebuilt in place without a
//! dedicated hot spare.
//!
//! This realizes the paper's closing suggestion that "the space used to
//! reconstruct a failed disk is distributed throughout the array in a
//! way similar to that in which the parity is distributed".

use crate::layout::{Layout, StripeUnit, UnitRole};
use crate::parity_assign::{AssignError, StripePartition};

/// A layout augmented with one spare unit per stripe, balanced across
/// disks to within one unit.
#[derive(Clone, Debug)]
pub struct SparedLayout {
    layout: Layout,
    /// `spare_slot[s]` indexes into stripe `s`'s unit list.
    spare_slot: Vec<usize>,
}

impl SparedLayout {
    /// Chooses spares for an existing layout: among each stripe's
    /// *data* units (the parity unit keeps its role), one is reserved as
    /// spare, with per-disk spare counts balanced to `⌊L⌋/⌈L⌉` by the
    /// generalized flow assignment.
    pub fn new(layout: Layout) -> Result<Self, AssignError> {
        // Build a partition over the stripes with the parity unit deleted,
        // so the flow chooses spares among data units only.
        let stripped: Vec<Vec<StripeUnit>> =
            layout.stripes().iter().map(|s| s.data_units().collect()).collect();
        let part = StripePartition::new(layout.v(), layout.size(), stripped);
        let counts = vec![1usize; layout.b()];
        let chosen = part.assign_distinguished(&counts)?;
        // Translate slot-in-data-units back to slot-in-full-stripe.
        let spare_slot = layout
            .stripes()
            .iter()
            .zip(&chosen)
            .map(|(stripe, slots)| {
                let data_idx = slots[0];
                let p = stripe.parity_slot();
                if data_idx >= p {
                    data_idx + 1
                } else {
                    data_idx
                }
            })
            .collect();
        Ok(SparedLayout { layout, spare_slot })
    }

    /// The underlying layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The spare unit of stripe `s`.
    pub fn spare_unit(&self, s: usize) -> StripeUnit {
        self.layout.stripes()[s].units()[self.spare_slot[s]]
    }

    /// Role of a unit, refined with sparing.
    pub fn role(&self, disk: usize, offset: usize) -> SparedRole {
        let r = self.layout.unit_ref(disk, offset);
        if self.spare_slot[r.stripe as usize] == r.slot as usize {
            SparedRole::Spare
        } else {
            match self.layout.role(disk, offset) {
                UnitRole::Parity => SparedRole::Parity,
                UnitRole::Data => SparedRole::Data,
            }
        }
    }

    /// Spare units per disk.
    pub fn spare_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.layout.v()];
        for s in 0..self.layout.b() {
            counts[self.spare_unit(s).disk as usize] += 1;
        }
        counts
    }

    /// Plan the reconstruction of `failed`: for each stripe crossing the
    /// failed disk, the lost unit is rebuilt into that stripe's spare
    /// unit. When the lost unit *was* the stripe's spare, nothing needs
    /// rebuilding but the stripe has lost its spare capacity; those
    /// stripes are reported in [`RebuildPlan::stranded`].
    pub fn rebuild_plan(&self, failed: usize) -> RebuildPlan {
        let mut targets = Vec::new();
        let mut stranded = Vec::new();
        for (si, stripe) in self.layout.stripes().iter().enumerate() {
            let Some(slot) = stripe.units().iter().position(|u| u.disk as usize == failed) else {
                continue;
            };
            if slot == self.spare_slot[si] {
                stranded.push(si);
            } else {
                targets.push((si, self.spare_unit(si)));
            }
        }
        RebuildPlan { failed, targets, stranded }
    }
}

/// Unit roles in a spared layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparedRole {
    /// Client data.
    Data,
    /// Stripe parity.
    Parity,
    /// Reserved spare space.
    Spare,
}

/// The per-stripe rebuild targets for a failed disk.
#[derive(Clone, Debug)]
pub struct RebuildPlan {
    /// The failed disk.
    pub failed: usize,
    /// `(stripe, spare unit)` pairs receiving reconstructed units.
    pub targets: Vec<(usize, StripeUnit)>,
    /// Stripes whose spare was on the failed disk: nothing to rebuild,
    /// but their spare capacity is gone until re-provisioned.
    pub stranded: Vec<usize>,
}

impl RebuildPlan {
    /// Rebuild writes per disk — the distributed analogue of the single
    /// spare disk's write bottleneck.
    pub fn write_counts(&self, v: usize) -> Vec<usize> {
        let mut counts = vec![0usize; v];
        for (_, u) in &self.targets {
            counts[u.disk as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_layout::RingLayout;

    fn spared(v: usize, k: usize) -> SparedLayout {
        SparedLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap()
    }

    #[test]
    fn spares_balanced_within_one() {
        let s = spared(9, 4);
        let counts = s.spare_counts();
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), s.layout().b());
    }

    #[test]
    fn spare_is_never_the_parity_unit() {
        let s = spared(7, 3);
        for (si, stripe) in s.layout().stripes().iter().enumerate() {
            assert_ne!(s.spare_unit(si), stripe.parity_unit());
        }
    }

    #[test]
    fn roles_partition_units() {
        let s = spared(8, 3);
        let l = s.layout();
        let mut counts = [0usize; 3];
        for d in 0..l.v() {
            for o in 0..l.size() {
                match s.role(d, o) {
                    SparedRole::Data => counts[0] += 1,
                    SparedRole::Parity => counts[1] += 1,
                    SparedRole::Spare => counts[2] += 1,
                }
            }
        }
        assert_eq!(counts[1], l.b(), "one parity per stripe");
        assert_eq!(counts[2], l.b(), "one spare per stripe");
        assert_eq!(counts.iter().sum::<usize>(), l.v() * l.size());
    }

    #[test]
    fn rebuild_plan_covers_failed_disk() {
        let s = spared(9, 4);
        let l = s.layout();
        let failed = 3;
        let plan = s.rebuild_plan(failed);
        let crossing = l.stripes().iter().filter(|st| st.crosses(failed)).count();
        assert_eq!(plan.targets.len() + plan.stranded.len(), crossing);
        // rebuild writes never land on the failed disk
        assert!(plan.targets.iter().all(|(_, u)| u.disk as usize != failed));
        // write load is spread: no disk takes more than a ceil share + slack
        let wc = plan.write_counts(l.v());
        let max = *wc.iter().max().unwrap();
        let total: usize = wc.iter().sum();
        assert!(max <= total.div_ceil(l.v() - 1) + 2, "writes {wc:?}");
    }

    #[test]
    fn stranded_spares_are_rare() {
        // Spares are balanced, so ~b/v stripes have their spare on any
        // given disk; only those crossing the failed disk strand.
        let s = spared(13, 4);
        let plan = s.rebuild_plan(0);
        let b = s.layout().b();
        assert!(plan.stranded.len() <= b / s.layout().v() + 2);
    }
}
