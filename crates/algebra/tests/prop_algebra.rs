//! Property-based tests for the algebraic substrate: number theory
//! against naive oracles, polynomial arithmetic laws, and ring axioms
//! over randomly chosen structures.

use pdl_algebra::nt;
use pdl_algebra::poly::{is_irreducible, Poly};
use pdl_algebra::{FiniteField, FiniteRing, ProductRing, Ring, Zn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gcd_against_naive(a in 0u64..5000, b in 0u64..5000) {
        let g = nt::gcd(a, b);
        if a != 0 || b != 0 {
            prop_assert!(g >= 1);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
            // no larger common divisor
            for d in (g + 1)..=(a.min(b)) {
                prop_assert!(!(a % d == 0 && b % d == 0));
            }
        } else {
            prop_assert_eq!(g, 0);
        }
    }

    #[test]
    fn lcm_gcd_identity(a in 1u64..3000, b in 1u64..3000) {
        prop_assert_eq!(nt::lcm(a, b) * nt::gcd(a, b), a * b);
    }

    #[test]
    fn factorization_multiplies_back(n in 2u64..200_000) {
        let f = nt::factorize(n);
        let prod: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
        prop_assert_eq!(prod, n);
        for &(p, _) in &f {
            prop_assert!(nt::is_prime(p));
        }
    }

    #[test]
    fn is_prime_against_trial(n in 0u64..3000) {
        let naive = n >= 2 && (2..n).all(|d| n % d != 0);
        prop_assert_eq!(nt::is_prime(n), naive);
    }

    #[test]
    fn mod_pow_against_naive(b in 0u64..100, e in 0u64..24, m in 1u64..500) {
        let mut acc = 1u64 % m;
        for _ in 0..e {
            acc = acc * (b % m) % m;
        }
        prop_assert_eq!(nt::mod_pow(b, e, m), acc);
    }

    #[test]
    fn divisors_complete(n in 1u64..2000) {
        let ds = nt::divisors(n);
        for d in 1..=n {
            prop_assert_eq!(ds.contains(&d), n % d == 0);
        }
    }

    #[test]
    fn min_prime_power_factor_divides(v in 2u64..5000) {
        let m = nt::min_prime_power_factor(v);
        prop_assert!(m >= 2);
        prop_assert_eq!(v % m, 0);
        prop_assert!(nt::is_prime_power(m));
    }

    #[test]
    fn poly_ring_laws(a in prop::collection::vec(0u64..5, 0..6),
                      b in prop::collection::vec(0u64..5, 0..6),
                      c in prop::collection::vec(0u64..5, 0..6)) {
        let p = 5u64;
        let (pa, pb, pc) = (Poly::from_coeffs(a), Poly::from_coeffs(b), Poly::from_coeffs(c));
        prop_assert_eq!(pa.add(&pb, p), pb.add(&pa, p));
        prop_assert_eq!(pa.mul(&pb, p), pb.mul(&pa, p));
        prop_assert_eq!(pa.mul(&pb.add(&pc, p), p),
                        pa.mul(&pb, p).add(&pa.mul(&pc, p), p));
        // subtraction inverts addition
        prop_assert_eq!(pa.add(&pb, p).sub(&pb, p), pa);
    }

    #[test]
    fn poly_rem_is_remainder(a in prop::collection::vec(0u64..7, 0..8)) {
        // (a mod f) differs from a by a multiple of f: check degree bound
        let p = 7u64;
        let f = Poly::from_coeffs(vec![3, 0, 1, 1]); // cubic, monic
        let pa = Poly::from_coeffs(a);
        let r = pa.rem(&f, p);
        prop_assert!(r.degree().map_or(true, |d| d < 3));
    }

    #[test]
    fn irreducible_products_are_reducible(
        i in 0usize..3usize,
        j in 0usize..3usize,
    ) {
        // all monic irreducible quadratics over Z_3
        let p = 3u64;
        let irr: Vec<Poly> = (0..9)
            .map(|n| Poly::from_coeffs(vec![n % 3, n / 3, 1]))
            .filter(|f| is_irreducible(f, p))
            .collect();
        let prod = irr[i].mul(&irr[j], p);
        prop_assert!(!is_irreducible(&prod, p));
    }

    #[test]
    fn zn_units_iff_coprime(n in 2usize..200, a in 0usize..200) {
        let z = Zn::new(n);
        let a = a % n;
        prop_assert_eq!(z.is_unit(a), nt::gcd(a as u64, n as u64) == 1);
    }

    #[test]
    fn product_ring_componentwise(x in 0usize..36, y in 0usize..36) {
        let r = ProductRing::new(vec![FiniteField::new(4), FiniteField::new(9)]);
        let (cx, cy) = (r.components(x), r.components(y));
        let sum = r.components(Ring::add(&r, x, y));
        let f4 = FiniteField::new(4);
        let f9 = FiniteField::new(9);
        prop_assert_eq!(sum[0], f4.add(cx[0], cy[0]));
        prop_assert_eq!(sum[1], f9.add(cx[1], cy[1]));
    }

    #[test]
    fn lemma3_ring_order(v in 2u64..400) {
        let ring = FiniteRing::lemma3_ring(v);
        prop_assert_eq!(ring.order() as u64, v);
        // 1 is always a unit; 0 never is
        prop_assert!(ring.is_unit(ring.one()));
        prop_assert!(!ring.is_unit(0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn field_multiplicative_group_cyclic(qi in 0usize..8) {
        let qs = [4u64, 5, 7, 8, 9, 16, 25, 27];
        let f = FiniteField::new(qs[qi]);
        let g = f.primitive_element();
        // powers of g enumerate all nonzero elements
        let mut seen = vec![false; f.order()];
        let mut cur = 1usize;
        for _ in 0..f.order() - 1 {
            prop_assert!(!seen[cur]);
            seen[cur] = true;
            cur = f.mul(cur, g);
        }
        prop_assert_eq!(cur, 1);
        prop_assert!(!seen[0]);
    }

    #[test]
    fn subfield_is_closed_field(mi in 0usize..3) {
        let cases = [(16u64, 4usize), (64, 8), (81, 9)];
        let (q, k) = cases[mi];
        let f = FiniteField::new(q);
        let sub = f.subfield(k);
        prop_assert_eq!(sub.len(), k);
        for &a in &sub {
            for &b in &sub {
                prop_assert!(sub.contains(&f.add(a, b)));
                prop_assert!(sub.contains(&f.mul(a, b)));
            }
            if a != 0 {
                prop_assert!(sub.contains(&f.inv(a).unwrap()));
            }
        }
    }
}
