//! Property-style tests for the algebraic substrate: number theory
//! against naive oracles, polynomial arithmetic laws, and ring axioms
//! over randomly chosen structures. Uses seeded random sampling (the
//! offline environment has no `proptest`) with 128 cases per property.

use pdl_algebra::nt;
use pdl_algebra::poly::{is_irreducible, Poly};
use pdl_algebra::{FiniteField, FiniteRing, ProductRing, Ring, Zn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 128;

#[test]
fn gcd_against_naive() {
    let mut rng = StdRng::seed_from_u64(0x6cd);
    for _ in 0..CASES {
        let a = rng.random_range(0u64..5000);
        let b = rng.random_range(0u64..5000);
        let g = nt::gcd(a, b);
        if a != 0 || b != 0 {
            assert!(g >= 1);
            assert_eq!(a % g, 0);
            assert_eq!(b % g, 0);
            // no larger common divisor
            for d in (g + 1)..=(a.min(b)) {
                assert!(!(a % d == 0 && b % d == 0));
            }
        } else {
            assert_eq!(g, 0);
        }
    }
}

#[test]
fn lcm_gcd_identity() {
    let mut rng = StdRng::seed_from_u64(0x1c3);
    for _ in 0..CASES {
        let a = rng.random_range(1u64..3000);
        let b = rng.random_range(1u64..3000);
        assert_eq!(nt::lcm(a, b) * nt::gcd(a, b), a * b);
    }
}

#[test]
fn factorization_multiplies_back() {
    let mut rng = StdRng::seed_from_u64(0xfac);
    for _ in 0..CASES {
        let n = rng.random_range(2u64..200_000);
        let f = nt::factorize(n);
        let prod: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
        assert_eq!(prod, n);
        for &(p, _) in &f {
            assert!(nt::is_prime(p));
        }
    }
}

#[test]
fn is_prime_against_trial() {
    let mut rng = StdRng::seed_from_u64(0x991);
    for _ in 0..CASES {
        let n = rng.random_range(0u64..3000);
        let naive = n >= 2 && (2..n).all(|d| n % d != 0);
        assert_eq!(nt::is_prime(n), naive);
    }
}

#[test]
fn mod_pow_against_naive() {
    let mut rng = StdRng::seed_from_u64(0x90d);
    for _ in 0..CASES {
        let b = rng.random_range(0u64..100);
        let e = rng.random_range(0u64..24);
        let m = rng.random_range(1u64..500);
        let mut acc = 1u64 % m;
        for _ in 0..e {
            acc = acc * (b % m) % m;
        }
        assert_eq!(nt::mod_pow(b, e, m), acc);
    }
}

#[test]
fn divisors_complete() {
    let mut rng = StdRng::seed_from_u64(0xd1f);
    for _ in 0..CASES {
        let n = rng.random_range(1u64..2000);
        let ds = nt::divisors(n);
        for d in 1..=n {
            assert_eq!(ds.contains(&d), n % d == 0);
        }
    }
}

#[test]
fn min_prime_power_factor_divides() {
    let mut rng = StdRng::seed_from_u64(0x3b9);
    for _ in 0..CASES {
        let v = rng.random_range(2u64..5000);
        let m = nt::min_prime_power_factor(v);
        assert!(m >= 2);
        assert_eq!(v % m, 0);
        assert!(nt::is_prime_power(m));
    }
}

fn random_coeffs(rng: &mut StdRng, max: u64, len_bound: usize) -> Vec<u64> {
    let len = rng.random_range(0..len_bound);
    (0..len).map(|_| rng.random_range(0..max)).collect()
}

#[test]
fn poly_ring_laws() {
    let mut rng = StdRng::seed_from_u64(0x901);
    for _ in 0..CASES {
        let p = 5u64;
        let pa = Poly::from_coeffs(random_coeffs(&mut rng, 5, 6));
        let pb = Poly::from_coeffs(random_coeffs(&mut rng, 5, 6));
        let pc = Poly::from_coeffs(random_coeffs(&mut rng, 5, 6));
        assert_eq!(pa.add(&pb, p), pb.add(&pa, p));
        assert_eq!(pa.mul(&pb, p), pb.mul(&pa, p));
        assert_eq!(pa.mul(&pb.add(&pc, p), p), pa.mul(&pb, p).add(&pa.mul(&pc, p), p));
        // subtraction inverts addition
        assert_eq!(pa.add(&pb, p).sub(&pb, p), pa);
    }
}

#[test]
fn poly_rem_is_remainder() {
    let mut rng = StdRng::seed_from_u64(0x4e3);
    for _ in 0..CASES {
        // (a mod f) differs from a by a multiple of f: check degree bound
        let p = 7u64;
        let f = Poly::from_coeffs(vec![3, 0, 1, 1]); // cubic, monic
        let pa = Poly::from_coeffs(random_coeffs(&mut rng, 7, 8));
        let r = pa.rem(&f, p);
        assert!(r.degree().is_none_or(|d| d < 3));
    }
}

#[test]
fn irreducible_products_are_reducible() {
    // all monic irreducible quadratics over Z_3
    let p = 3u64;
    let irr: Vec<Poly> = (0..9)
        .map(|n| Poly::from_coeffs(vec![n % 3, n / 3, 1]))
        .filter(|f| is_irreducible(f, p))
        .collect();
    for i in 0..3 {
        for j in 0..3 {
            let prod = irr[i].mul(&irr[j], p);
            assert!(!is_irreducible(&prod, p));
        }
    }
}

#[test]
fn zn_units_iff_coprime() {
    let mut rng = StdRng::seed_from_u64(0x2a7);
    for _ in 0..CASES {
        let n = rng.random_range(2usize..200);
        let a = rng.random_range(0usize..200) % n;
        let z = Zn::new(n);
        assert_eq!(z.is_unit(a), nt::gcd(a as u64, n as u64) == 1);
    }
}

#[test]
fn product_ring_componentwise() {
    let mut rng = StdRng::seed_from_u64(0x9c4);
    for _ in 0..CASES {
        let x = rng.random_range(0usize..36);
        let y = rng.random_range(0usize..36);
        let r = ProductRing::new(vec![FiniteField::new(4), FiniteField::new(9)]);
        let (cx, cy) = (r.components(x), r.components(y));
        let sum = r.components(Ring::add(&r, x, y));
        let f4 = FiniteField::new(4);
        let f9 = FiniteField::new(9);
        assert_eq!(sum[0], f4.add(cx[0], cy[0]));
        assert_eq!(sum[1], f9.add(cx[1], cy[1]));
    }
}

#[test]
fn lemma3_ring_order() {
    let mut rng = StdRng::seed_from_u64(0x133);
    for _ in 0..CASES {
        let v = rng.random_range(2u64..400);
        let ring = FiniteRing::lemma3_ring(v);
        assert_eq!(ring.order() as u64, v);
        // 1 is always a unit; 0 never is
        assert!(ring.is_unit(ring.one()));
        assert!(!ring.is_unit(0));
    }
}

#[test]
fn field_multiplicative_group_cyclic() {
    for q in [4u64, 5, 7, 8, 9, 16, 25, 27] {
        let f = FiniteField::new(q);
        let g = f.primitive_element();
        // powers of g enumerate all nonzero elements
        let mut seen = vec![false; f.order()];
        let mut cur = 1usize;
        for _ in 0..f.order() - 1 {
            assert!(!seen[cur]);
            seen[cur] = true;
            cur = f.mul(cur, g);
        }
        assert_eq!(cur, 1);
        assert!(!seen[0]);
    }
}

#[test]
fn subfield_is_closed_field() {
    for (q, k) in [(16u64, 4usize), (64, 8), (81, 9)] {
        let f = FiniteField::new(q);
        let sub = f.subfield(k);
        assert_eq!(sub.len(), k);
        for &a in &sub {
            for &b in &sub {
                assert!(sub.contains(&f.add(a, b)));
                assert!(sub.contains(&f.mul(a, b)));
            }
            if a != 0 {
                assert!(sub.contains(&f.inv(a).unwrap()));
            }
        }
    }
}

// ---- wide GF(2^8)/XOR kernels vs their scalar references ----------------
//
// The data-path kernels (`xor_slice`, `mul_slice`, `mul_add_slice`)
// process eight bytes per step via u64 lanes and 4-bit split (nibble)
// tables; each keeps a byte-at-a-time `*_scalar` twin. These tests pin
// wide == scalar for ALL 256 coefficients and random lengths that
// deliberately include non-multiple-of-8 tails (and sub-threshold
// slices that take the scalar fallback), so any lane/tail bug in the
// wide forms is caught against the simple reference.

#[test]
fn wide_mul_kernels_match_scalar_all_coefficients() {
    use pdl_algebra::gf256;
    let mut rng = StdRng::seed_from_u64(0x9f256);
    for c in 0..=255u8 {
        // Random length per coefficient: spans the scalar fallback
        // (< 32), odd tails, and multi-word bodies.
        let len = match c % 4 {
            0 => rng.random_range(1usize..32),
            1 => rng.random_range(32usize..64),
            2 => 8 * rng.random_range(4usize..40),
            _ => 8 * rng.random_range(4usize..40) + rng.random_range(1usize..8),
        };
        let src: Vec<u8> = (0..len).map(|_| rng.random_range(0u64..256) as u8).collect();
        let base: Vec<u8> = (0..len).map(|_| rng.random_range(0u64..256) as u8).collect();

        let mut wide = base.clone();
        let mut scalar = base.clone();
        gf256::mul_add_slice(&mut wide, &src, c);
        gf256::mul_add_slice_scalar(&mut scalar, &src, c);
        assert_eq!(wide, scalar, "mul_add_slice c={c} len={len}");
        for i in 0..len {
            assert_eq!(wide[i], base[i] ^ gf256::mul(src[i], c), "mul_add vs mul, c={c} i={i}");
        }

        let mut wide = base.clone();
        let mut scalar = base.clone();
        gf256::mul_slice(&mut wide, c);
        gf256::mul_slice_scalar(&mut scalar, c);
        assert_eq!(wide, scalar, "mul_slice c={c} len={len}");
        for i in 0..len {
            assert_eq!(wide[i], gf256::mul(base[i], c), "mul_slice vs mul, c={c} i={i}");
        }
    }
}

#[test]
fn wide_xor_matches_scalar_random_lengths() {
    use pdl_algebra::gf256;
    let mut rng = StdRng::seed_from_u64(0xae5);
    for round in 0..200 {
        let len = match round % 3 {
            0 => rng.random_range(1usize..9),
            1 => 8 * rng.random_range(1usize..64),
            _ => 8 * rng.random_range(1usize..64) + rng.random_range(1usize..8),
        };
        let src: Vec<u8> = (0..len).map(|_| rng.random_range(0u64..256) as u8).collect();
        let base: Vec<u8> = (0..len).map(|_| rng.random_range(0u64..256) as u8).collect();
        let mut wide = base.clone();
        let mut scalar = base.clone();
        gf256::xor_slice(&mut wide, &src);
        gf256::xor_slice_scalar(&mut scalar, &src);
        assert_eq!(wide, scalar, "xor_slice len={len}");
        // XOR is an involution: applying src again restores base.
        gf256::xor_slice(&mut wide, &src);
        assert_eq!(wide, base, "xor involution len={len}");
    }
}

#[test]
fn wide_kernels_compose_like_field_ops() {
    use pdl_algebra::gf256;
    // (a·x) ^ (b·x) == (a^b)·x on whole slices — distributivity
    // exercised through the wide kernels themselves.
    let mut rng = StdRng::seed_from_u64(0x77d1);
    for _ in 0..64 {
        let len = rng.random_range(1usize..300);
        let x: Vec<u8> = (0..len).map(|_| rng.random_range(0u64..256) as u8).collect();
        let (a, b) = (rng.random_range(0u64..256) as u8, rng.random_range(0u64..256) as u8);
        let mut lhs = vec![0u8; len];
        gf256::mul_add_slice(&mut lhs, &x, a);
        gf256::mul_add_slice(&mut lhs, &x, b);
        let mut rhs = vec![0u8; len];
        gf256::mul_add_slice(&mut rhs, &x, a ^ b);
        assert_eq!(lhs, rhs, "distributivity a={a} b={b} len={len}");
    }
}
