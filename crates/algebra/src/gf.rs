//! The finite field `GF(p^m)`, table-driven.
//!
//! Elements are `usize` indices in `0..q` (`q = p^m`): the index is the
//! base-`p` packing of the coefficient vector of the residue polynomial
//! (coefficient of `x^j` = `j`-th base-`p` digit). Index 0 is the additive
//! identity and index 1 the multiplicative identity.
//!
//! After construction, multiplication, inversion, and powering are O(1)
//! via exp/log tables over a primitive element — the hot-path layout
//! constructions (Section 2 of the paper) do `Θ(v²)` field ops per design,
//! so table setup cost `O(q·m²)` amortizes immediately.

use crate::nt::{divisors, factorize, prime_divisors};
use crate::poly::{find_irreducible, Poly};

/// A concrete finite field `GF(p^m)`.
#[derive(Clone, Debug)]
pub struct FiniteField {
    p: u64,
    m: u32,
    q: usize,
    modulus: Poly,
    /// `exp[i] = g^i` for `i in 0..q-1`, `g` a primitive element.
    exp: Vec<usize>,
    /// `log[exp[i]] = i`; `log[0]` is unused (set to usize::MAX).
    log: Vec<usize>,
}

impl FiniteField {
    /// Constructs `GF(q)`. Panics if `q` is not a prime power ≥ 2.
    pub fn new(q: u64) -> Self {
        let (p, m) = crate::nt::prime_power(q)
            .unwrap_or_else(|| panic!("GF({q}): order must be a prime power"));
        let modulus = find_irreducible(p, m);
        let mut field =
            FiniteField { p, m, q: q as usize, modulus, exp: Vec::new(), log: Vec::new() };
        field.build_tables();
        field
    }

    /// Characteristic `p`.
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// Extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Field order `q = p^m`.
    pub fn order(&self) -> usize {
        self.q
    }

    /// The irreducible modulus used for the representation.
    pub fn modulus(&self) -> &Poly {
        &self.modulus
    }

    fn index_to_poly(&self, mut i: usize) -> Poly {
        let mut coeffs = Vec::with_capacity(self.m as usize);
        for _ in 0..self.m {
            coeffs.push((i % self.p as usize) as u64);
            i /= self.p as usize;
        }
        Poly::from_coeffs(coeffs)
    }

    fn poly_to_index(&self, f: &Poly) -> usize {
        let mut idx = 0usize;
        for &c in f.0.iter().rev() {
            idx = idx * self.p as usize + c as usize;
        }
        idx
    }

    /// Raw (table-free) multiplication, used to bootstrap the tables.
    fn mul_raw(&self, a: usize, b: usize) -> usize {
        let fa = self.index_to_poly(a);
        let fb = self.index_to_poly(b);
        self.poly_to_index(&fa.mul(&fb, self.p).rem(&self.modulus, self.p))
    }

    fn pow_raw(&self, a: usize, mut e: u64) -> usize {
        let mut base = a;
        let mut acc = 1usize;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul_raw(acc, base);
            }
            base = self.mul_raw(base, base);
            e >>= 1;
        }
        acc
    }

    fn build_tables(&mut self) {
        let group = self.q as u64 - 1;
        let prime_divs = prime_divisors(group);
        // Find a primitive element: order exactly q-1.
        let g = (2..self.q)
            .find(|&cand| {
                self.pow_raw(cand, group) == 1
                    && prime_divs.iter().all(|&l| self.pow_raw(cand, group / l) != 1)
            })
            .unwrap_or(1); // GF(2): the group is trivial, g=1
        let mut exp = Vec::with_capacity(self.q - 1);
        let mut log = vec![usize::MAX; self.q];
        let mut cur = 1usize;
        for i in 0..self.q - 1 {
            exp.push(cur);
            debug_assert_eq!(log[cur], usize::MAX, "primitive element search failed");
            log[cur] = i;
            cur = self.mul_raw(cur, g);
        }
        assert_eq!(cur, 1, "generator does not have full order");
        self.exp = exp;
        self.log = log;
    }

    /// Addition: coefficient-wise mod p. O(m); O(1) when p = 2 (XOR).
    pub fn add(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.q && b < self.q);
        if self.p == 2 {
            return a ^ b;
        }
        let p = self.p as usize;
        let (mut a, mut b) = (a, b);
        let mut out = 0usize;
        let mut place = 1usize;
        for _ in 0..self.m {
            out += (a % p + b % p) % p * place;
            a /= p;
            b /= p;
            place *= p;
        }
        out
    }

    /// Additive inverse.
    pub fn neg(&self, a: usize) -> usize {
        debug_assert!(a < self.q);
        if self.p == 2 {
            return a;
        }
        let p = self.p as usize;
        let mut a = a;
        let mut out = 0usize;
        let mut place = 1usize;
        for _ in 0..self.m {
            out += (p - a % p) % p * place;
            a /= p;
            place *= p;
        }
        out
    }

    /// Subtraction `a - b`.
    pub fn sub(&self, a: usize, b: usize) -> usize {
        self.add(a, self.neg(b))
    }

    /// Table-free schoolbook multiplication (polynomial multiply +
    /// reduction). Exposed as the ablation baseline for the exp/log
    /// tables; `mul` is the production path.
    pub fn mul_schoolbook(&self, a: usize, b: usize) -> usize {
        self.mul_raw(a, b)
    }

    /// Multiplication via log tables (O(1)).
    pub fn mul(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.q && b < self.q);
        if a == 0 || b == 0 {
            return 0;
        }
        let s = self.log[a] + self.log[b];
        let n = self.q - 1;
        self.exp[if s >= n { s - n } else { s }]
    }

    /// Multiplicative inverse; `None` for 0.
    pub fn inv(&self, a: usize) -> Option<usize> {
        debug_assert!(a < self.q);
        if a == 0 {
            return None;
        }
        let n = self.q - 1;
        Some(self.exp[(n - self.log[a]) % n])
    }

    /// `a^e` (e ≥ 0; `0^0 = 1`).
    pub fn pow(&self, a: usize, e: u64) -> usize {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let n = (self.q - 1) as u64;
        self.exp[(self.log[a] as u64 * (e % n) % n) as usize]
    }

    /// A fixed primitive element (generator of the multiplicative group).
    pub fn primitive_element(&self) -> usize {
        self.exp.get(1).copied().unwrap_or(1)
    }

    /// Multiplicative order of a nonzero element.
    pub fn element_order(&self, a: usize) -> u64 {
        assert!(a != 0 && a < self.q, "order is defined for nonzero elements");
        let n = (self.q - 1) as u64;
        let l = self.log[a] as u64;
        n / crate::nt::gcd(n, l)
    }

    /// An element of multiplicative order exactly `d` (requires `d | q-1`).
    ///
    /// Used by the Theorem 4/5 constructions, which need an element of
    /// order `gcd(v-1, k-1)` or `gcd(v-1, k)`.
    pub fn element_of_order(&self, d: u64) -> usize {
        let n = (self.q - 1) as u64;
        assert!(d >= 1 && n.is_multiple_of(d), "order {d} must divide q-1 = {n}");
        if d == 1 {
            return 1;
        }
        self.exp[(n / d) as usize]
    }

    /// The unique subfield of order `k` (requires `k = p^d` with `d | m`).
    ///
    /// Returned as a sorted list of element indices: `{0} ∪` the unique
    /// multiplicative subgroup of order `k-1`. Used by Theorem 6
    /// (generators forming a subfield).
    pub fn subfield(&self, k: usize) -> Vec<usize> {
        let (kp, kd) = crate::nt::prime_power(k as u64)
            .unwrap_or_else(|| panic!("subfield order {k} must be a prime power"));
        assert_eq!(kp, self.p, "subfield must share the characteristic");
        assert_eq!(self.m % kd, 0, "GF({k}) is not a subfield of GF({})", self.q);
        let n = self.q - 1;
        let step = n / (k - 1);
        let mut elems: Vec<usize> =
            std::iter::once(0).chain((0..k - 1).map(|i| self.exp[i * step])).collect();
        elems.sort_unstable();
        elems
    }

    /// All subfield orders of this field (`p^d` for `d | m`), ascending.
    pub fn subfield_orders(&self) -> Vec<usize> {
        divisors(self.m as u64).into_iter().map(|d| (self.p as usize).pow(d as u32)).collect()
    }

    /// Embeds a base-field residue `c ∈ Z_p` as a field element index.
    pub fn from_base(&self, c: u64) -> usize {
        (c % self.p) as usize
    }

    /// Checks `q - 1 = Π (p_i^{e_i})` consistency; exposed for tests.
    pub fn group_order_factorization(&self) -> Vec<(u64, u32)> {
        factorize(self.q as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields_under_test() -> Vec<FiniteField> {
        [2u64, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32, 49, 64, 81, 121, 125, 128]
            .iter()
            .map(|&q| FiniteField::new(q))
            .collect()
    }

    #[test]
    #[should_panic(expected = "prime power")]
    fn rejects_non_prime_power() {
        FiniteField::new(12);
    }

    #[test]
    fn identities() {
        for f in fields_under_test() {
            let q = f.order();
            for a in 0..q {
                assert_eq!(f.add(a, 0), a, "q={q}");
                assert_eq!(f.mul(a, 1), a, "q={q}");
                assert_eq!(f.add(a, f.neg(a)), 0, "q={q}");
                assert_eq!(f.mul(a, 0), 0, "q={q}");
            }
        }
    }

    #[test]
    fn inverses() {
        for f in fields_under_test() {
            let q = f.order();
            assert_eq!(f.inv(0), None);
            for a in 1..q {
                let inv = f.inv(a).unwrap();
                assert_eq!(f.mul(a, inv), 1, "q={q} a={a}");
            }
        }
    }

    #[test]
    fn commutativity_and_associativity_sampled() {
        for f in fields_under_test() {
            let q = f.order();
            let pick = |i: usize| (i * 7 + 3) % q;
            for i in 0..q.min(24) {
                for j in 0..q.min(24) {
                    let (a, b) = (pick(i), pick(j));
                    assert_eq!(f.add(a, b), f.add(b, a));
                    assert_eq!(f.mul(a, b), f.mul(b, a));
                    let c = pick(i + j);
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn exp_log_consistency() {
        for f in fields_under_test() {
            let q = f.order();
            // Every nonzero element appears exactly once in exp.
            let mut seen = vec![false; q];
            for i in 0..q - 1 {
                let e = f.exp[i];
                assert!(!seen[e]);
                seen[e] = true;
            }
            assert!(!seen[0]);
        }
    }

    #[test]
    fn primitive_element_has_full_order() {
        for f in fields_under_test() {
            let q = f.order();
            if q > 2 {
                let g = f.primitive_element();
                assert_eq!(f.element_order(g), (q - 1) as u64, "q={q}");
            }
        }
    }

    #[test]
    fn element_orders_divide_group_order() {
        for f in fields_under_test() {
            let n = (f.order() - 1) as u64;
            for a in 1..f.order() {
                let d = f.element_order(a);
                assert_eq!(n % d, 0);
                assert_eq!(f.pow(a, d), 1);
                // order is minimal
                for dd in crate::nt::divisors(d) {
                    if dd < d {
                        assert_ne!(f.pow(a, dd), 1, "a={a} d={d} dd={dd}");
                    }
                }
            }
        }
    }

    #[test]
    fn element_of_order_exact() {
        for f in fields_under_test() {
            let n = (f.order() - 1) as u64;
            for d in crate::nt::divisors(n) {
                let a = f.element_of_order(d);
                assert_eq!(f.element_order(a), d, "q={} d={d}", f.order());
            }
        }
    }

    #[test]
    fn frobenius_fixed_points_are_prime_subfield() {
        // Elements with a^p = a form GF(p).
        for f in fields_under_test() {
            let p = f.characteristic();
            let fixed: Vec<usize> = (0..f.order()).filter(|&a| f.pow(a, p) == a).collect();
            assert_eq!(fixed.len(), p as usize, "q={}", f.order());
        }
    }

    #[test]
    fn subfield_structure() {
        let f = FiniteField::new(16);
        assert_eq!(f.subfield_orders(), vec![2, 4, 16]);
        let g4 = f.subfield(4);
        assert_eq!(g4.len(), 4);
        // closure under add and mul
        for &a in &g4 {
            for &b in &g4 {
                assert!(g4.contains(&f.add(a, b)));
                assert!(g4.contains(&f.mul(a, b)));
            }
        }
        assert!(g4.contains(&0) && g4.contains(&1));

        let f81 = FiniteField::new(81);
        let g9 = f81.subfield(9);
        assert_eq!(g9.len(), 9);
        for &a in &g9 {
            for &b in &g9 {
                assert!(g9.contains(&f81.add(a, b)));
                assert!(g9.contains(&f81.mul(a, b)));
            }
        }
        let g3 = f81.subfield(3);
        assert_eq!(g3.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a subfield")]
    fn subfield_rejects_bad_order() {
        FiniteField::new(16).subfield(8); // GF(8) ⊄ GF(16)
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for f in fields_under_test().into_iter().take(8) {
            for a in 0..f.order() {
                let mut acc = 1usize;
                for e in 0..10u64 {
                    assert_eq!(f.pow(a, e), acc, "q={} a={a} e={e}", f.order());
                    acc = f.mul(acc, a);
                }
            }
        }
    }

    #[test]
    fn char_p_addition() {
        // p * a = 0 for all a (Algebra Fact 1 specialized to fields).
        for f in fields_under_test() {
            let p = f.characteristic();
            for a in 0..f.order() {
                let mut acc = 0usize;
                for _ in 0..p {
                    acc = f.add(acc, a);
                }
                assert_eq!(acc, 0);
            }
        }
    }
}
