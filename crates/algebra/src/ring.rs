//! Finite commutative rings with unit, the algebraic substrate of
//! ring-based block designs (Section 2 of the paper).
//!
//! A [`Ring`] exposes its elements as indices `0..order()`, with index 0
//! the additive identity. The three concrete rings the paper needs are
//! the integers mod n ([`Zn`]), finite fields ([`FiniteField`]), and
//! cross products of fields ([`ProductRing`], Lemma 3). [`FiniteRing`]
//! is a closed enum over these, convenient for table-driven design code.

use crate::gf::FiniteField;
use crate::nt::{factorize, mod_inverse};

/// A finite commutative ring with unit, elements indexed `0..order()`.
///
/// Index 0 must be the additive identity; `one()` gives the index of the
/// multiplicative identity.
pub trait Ring {
    /// Number of elements in the ring.
    fn order(&self) -> usize;
    /// Index of the multiplicative identity.
    fn one(&self) -> usize;
    /// Addition.
    fn add(&self, a: usize, b: usize) -> usize;
    /// Additive inverse.
    fn neg(&self, a: usize) -> usize;
    /// Multiplication.
    fn mul(&self, a: usize, b: usize) -> usize;
    /// Multiplicative inverse, if the element is a unit.
    fn inv(&self, a: usize) -> Option<usize>;

    /// Subtraction `a - b`.
    fn sub(&self, a: usize, b: usize) -> usize {
        self.add(a, self.neg(b))
    }

    /// True iff `a` is a unit (has a multiplicative inverse).
    fn is_unit(&self, a: usize) -> bool {
        self.inv(a).is_some()
    }

    /// Checks the generator-set condition of Section 2.1: all pairwise
    /// differences `g_i - g_j` (i ≠ j) must be units.
    fn is_generator_set(&self, gens: &[usize]) -> bool {
        for (i, &gi) in gens.iter().enumerate() {
            for &gj in gens.iter().skip(i + 1) {
                if !self.is_unit(self.sub(gi, gj)) {
                    return false;
                }
            }
        }
        // Distinctness is implied by invertibility of differences only
        // when the ring is nontrivial; check it anyway.
        let mut sorted: Vec<usize> = gens.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len() == gens.len()
    }
}

/// The ring of integers modulo `n` (index = residue).
#[derive(Clone, Debug)]
pub struct Zn {
    n: usize,
}

impl Zn {
    /// Constructs `Z_n`, `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "Z_n needs n >= 2 to contain 1 != 0");
        Zn { n }
    }
}

impl Ring for Zn {
    fn order(&self) -> usize {
        self.n
    }
    fn one(&self) -> usize {
        1 % self.n
    }
    fn add(&self, a: usize, b: usize) -> usize {
        (a + b) % self.n
    }
    fn neg(&self, a: usize) -> usize {
        (self.n - a % self.n) % self.n
    }
    fn mul(&self, a: usize, b: usize) -> usize {
        a * b % self.n
    }
    fn inv(&self, a: usize) -> Option<usize> {
        mod_inverse(a as u64, self.n as u64).map(|x| x as usize)
    }
}

impl Ring for FiniteField {
    fn order(&self) -> usize {
        FiniteField::order(self)
    }
    fn one(&self) -> usize {
        1
    }
    fn add(&self, a: usize, b: usize) -> usize {
        FiniteField::add(self, a, b)
    }
    fn neg(&self, a: usize) -> usize {
        FiniteField::neg(self, a)
    }
    fn mul(&self, a: usize, b: usize) -> usize {
        FiniteField::mul(self, a, b)
    }
    fn inv(&self, a: usize) -> Option<usize> {
        FiniteField::inv(self, a)
    }
}

/// Cross product `R_1 × … × R_n` of finite fields (Section 2, Lemma 3).
///
/// Element index is the mixed-radix packing of component indices, with the
/// first component varying fastest.
#[derive(Clone, Debug)]
pub struct ProductRing {
    factors: Vec<FiniteField>,
    order: usize,
}

impl ProductRing {
    /// Builds the cross product of the given fields.
    pub fn new(factors: Vec<FiniteField>) -> Self {
        assert!(!factors.is_empty(), "product of zero rings is trivial");
        let order = factors.iter().map(|f| f.order()).product();
        ProductRing { factors, order }
    }

    /// Decomposes an index into per-factor component indices.
    pub fn components(&self, mut a: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.factors.len());
        for f in &self.factors {
            out.push(a % f.order());
            a /= f.order();
        }
        out
    }

    /// Packs component indices back into a ring index.
    pub fn from_components(&self, comps: &[usize]) -> usize {
        assert_eq!(comps.len(), self.factors.len());
        let mut idx = 0usize;
        for (f, &c) in self.factors.iter().zip(comps).rev() {
            debug_assert!(c < f.order());
            idx = idx * f.order() + c;
        }
        idx
    }

    /// The component fields.
    pub fn factors(&self) -> &[FiniteField] {
        &self.factors
    }

    fn zip_op(
        &self,
        a: usize,
        b: usize,
        op: impl Fn(&FiniteField, usize, usize) -> usize,
    ) -> usize {
        let (mut a, mut b) = (a, b);
        let mut idx = 0usize;
        let mut place = 1usize;
        for f in &self.factors {
            let o = f.order();
            idx += op(f, a % o, b % o) * place;
            a /= o;
            b /= o;
            place *= o;
        }
        idx
    }
}

impl Ring for ProductRing {
    fn order(&self) -> usize {
        self.order
    }
    fn one(&self) -> usize {
        self.from_components(&vec![1; self.factors.len()])
    }
    fn add(&self, a: usize, b: usize) -> usize {
        self.zip_op(a, b, |f, x, y| f.add(x, y))
    }
    fn neg(&self, a: usize) -> usize {
        let comps: Vec<usize> =
            self.components(a).iter().zip(&self.factors).map(|(&x, f)| f.neg(x)).collect();
        self.from_components(&comps)
    }
    fn mul(&self, a: usize, b: usize) -> usize {
        self.zip_op(a, b, |f, x, y| f.mul(x, y))
    }
    fn inv(&self, a: usize) -> Option<usize> {
        let mut comps = Vec::with_capacity(self.factors.len());
        for (&x, f) in self.components(a).iter().zip(&self.factors) {
            comps.push(f.inv(x)?);
        }
        Some(self.from_components(&comps))
    }
}

/// Closed enum over the ring families the paper uses, so design code can
/// store rings by value without trait objects.
#[derive(Clone, Debug)]
pub enum FiniteRing {
    /// Integers modulo n.
    Zn(Zn),
    /// A finite field GF(p^m).
    Field(FiniteField),
    /// A cross product of finite fields.
    Product(ProductRing),
}

impl FiniteRing {
    /// The ring `R_v` of Lemma 3: the product of fields `GF(p_i^{e_i})`
    /// over the factorization of `v`, which contains a generator set of
    /// the maximal size `M(v)`. For prime-power `v` this is just `GF(v)`.
    pub fn lemma3_ring(v: u64) -> Self {
        let f = factorize(v);
        assert!(!f.is_empty(), "v must be at least 2");
        if f.len() == 1 {
            FiniteRing::Field(FiniteField::new(v))
        } else {
            FiniteRing::Product(ProductRing::new(
                f.iter().map(|&(p, e)| FiniteField::new(p.pow(e))).collect(),
            ))
        }
    }

    /// A generator set of size `k` in this ring, following Lemma 3:
    /// component-wise tuples of `k` distinct elements in every factor
    /// field. Panics if `k` exceeds the ring's maximal generator-set size.
    pub fn lemma3_generators(&self, k: usize) -> Vec<usize> {
        match self {
            FiniteRing::Field(f) => {
                assert!(k <= f.order(), "k={k} exceeds field order {}", f.order());
                // Any k distinct field elements; include 0 so g0 = 0,
                // which the layout constructions of Section 3 rely on.
                (0..k).collect()
            }
            FiniteRing::Zn(z) => {
                // In Z_n the set {0, 1, …, k-1} is a generator set iff all
                // differences 1..k-1 are units, i.e. k-1 < least prime
                // factor of n.
                let gens: Vec<usize> = (0..k).collect();
                assert!(
                    self.is_generator_set(&gens),
                    "Z_{} has no generator set {{0..{k}}}",
                    z.order()
                );
                gens
            }
            FiniteRing::Product(pr) => {
                let max = pr.factors().iter().map(|f| f.order()).min().unwrap();
                assert!(k <= max, "k={k} exceeds M(v)={max} for this product ring (Theorem 2)");
                (0..k).map(|j| pr.from_components(&vec![j; pr.factors().len()])).collect()
            }
        }
    }
}

impl Ring for FiniteRing {
    fn order(&self) -> usize {
        match self {
            FiniteRing::Zn(r) => r.order(),
            FiniteRing::Field(r) => Ring::order(r),
            FiniteRing::Product(r) => r.order(),
        }
    }
    fn one(&self) -> usize {
        match self {
            FiniteRing::Zn(r) => r.one(),
            FiniteRing::Field(r) => Ring::one(r),
            FiniteRing::Product(r) => r.one(),
        }
    }
    fn add(&self, a: usize, b: usize) -> usize {
        match self {
            FiniteRing::Zn(r) => r.add(a, b),
            FiniteRing::Field(r) => Ring::add(r, a, b),
            FiniteRing::Product(r) => r.add(a, b),
        }
    }
    fn neg(&self, a: usize) -> usize {
        match self {
            FiniteRing::Zn(r) => r.neg(a),
            FiniteRing::Field(r) => Ring::neg(r, a),
            FiniteRing::Product(r) => r.neg(a),
        }
    }
    fn mul(&self, a: usize, b: usize) -> usize {
        match self {
            FiniteRing::Zn(r) => r.mul(a, b),
            FiniteRing::Field(r) => Ring::mul(r, a, b),
            FiniteRing::Product(r) => r.mul(a, b),
        }
    }
    fn inv(&self, a: usize) -> Option<usize> {
        match self {
            FiniteRing::Zn(r) => r.inv(a),
            FiniteRing::Field(r) => Ring::inv(r, a),
            FiniteRing::Product(r) => r.inv(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nt::min_prime_power_factor;

    fn check_ring_axioms<R: Ring>(r: &R) {
        let n = r.order();
        let step = (n / 17).max(1);
        let sample: Vec<usize> = (0..n).step_by(step).collect();
        assert_eq!(r.add(0, 0), 0);
        for &a in &sample {
            assert_eq!(r.add(a, 0), a);
            assert_eq!(r.mul(a, r.one()), a);
            assert_eq!(r.add(a, r.neg(a)), 0);
            assert_eq!(r.mul(a, 0), 0);
            for &b in &sample {
                assert_eq!(r.add(a, b), r.add(b, a));
                assert_eq!(r.mul(a, b), r.mul(b, a));
                for &c in sample.iter().take(6) {
                    assert_eq!(r.add(r.add(a, b), c), r.add(a, r.add(b, c)));
                    assert_eq!(r.mul(r.mul(a, b), c), r.mul(a, r.mul(b, c)));
                    assert_eq!(r.mul(a, r.add(b, c)), r.add(r.mul(a, b), r.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn zn_axioms() {
        for n in [2usize, 3, 4, 6, 8, 9, 12, 30, 36, 100] {
            check_ring_axioms(&Zn::new(n));
        }
    }

    #[test]
    fn zn_units() {
        let z12 = Zn::new(12);
        let units: Vec<usize> = (0..12).filter(|&a| z12.is_unit(a)).collect();
        assert_eq!(units, vec![1, 5, 7, 11]);
        for &u in &units {
            let inv = z12.inv(u).unwrap();
            assert_eq!(z12.mul(u, inv), 1);
        }
    }

    #[test]
    fn field_as_ring_axioms() {
        for q in [4u64, 9, 8, 27] {
            check_ring_axioms(&FiniteField::new(q));
        }
    }

    #[test]
    fn product_ring_axioms() {
        let r = ProductRing::new(vec![FiniteField::new(4), FiniteField::new(9)]);
        assert_eq!(Ring::order(&r), 36);
        check_ring_axioms(&r);
    }

    #[test]
    fn product_ring_components_roundtrip() {
        let r =
            ProductRing::new(vec![FiniteField::new(4), FiniteField::new(3), FiniteField::new(25)]);
        for a in 0..Ring::order(&r) {
            assert_eq!(r.from_components(&r.components(a)), a);
        }
    }

    #[test]
    fn product_ring_units_are_componentwise() {
        let r = ProductRing::new(vec![FiniteField::new(2), FiniteField::new(3)]);
        // units = pairs with both components nonzero: 1 * 2 = 2 of them
        let units: Vec<usize> = (0..Ring::order(&r)).filter(|&a| r.is_unit(a)).collect();
        assert_eq!(units.len(), 2);
        // a product of >1 fields is not a field (paper, Section 2.1)
        assert!(units.len() < Ring::order(&r) - 1);
    }

    #[test]
    fn lemma3_generator_sets() {
        for v in [6u64, 12, 30, 36, 100, 7, 16, 81] {
            let m = min_prime_power_factor(v) as usize;
            let ring = FiniteRing::lemma3_ring(v);
            assert_eq!(ring.order(), v as usize);
            let gens = ring.lemma3_generators(m);
            assert_eq!(gens.len(), m);
            assert!(ring.is_generator_set(&gens), "v={v}");
            assert_eq!(gens[0], 0, "g0 must be the zero element (v={v})");
        }
    }

    #[test]
    #[should_panic(expected = "Theorem 2")]
    fn lemma3_rejects_oversized_k() {
        // v = 12, M(v) = 3: k = 4 must be impossible.
        let ring = FiniteRing::lemma3_ring(12);
        ring.lemma3_generators(4);
    }

    #[test]
    fn generator_set_check_catches_bad_sets() {
        let ring = FiniteRing::Zn(Zn::new(6));
        // 3 - 1 = 2 is not a unit in Z_6.
        assert!(!ring.is_generator_set(&[1, 3]));
        assert!(ring.is_generator_set(&[0, 1]));
        assert!(!ring.is_generator_set(&[1, 1]));
    }

    #[test]
    fn field_every_subset_is_generator_set() {
        let f = FiniteRing::Field(FiniteField::new(9));
        assert!(f.is_generator_set(&[0, 1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn zn_prime_is_field_like() {
        let z7 = Zn::new(7);
        for a in 1..7 {
            assert!(z7.is_unit(a));
        }
    }
}
