//! # pdl-algebra
//!
//! Algebraic substrate for parity-declustered layout construction
//! (Schwabe & Sutherland, SPAA'94 / JCSS'96, Section 2): elementary
//! number theory, polynomials over prime fields, table-driven finite
//! fields `GF(p^m)`, and finite commutative rings with unit (including
//! the product-of-fields rings of Lemma 3).
//!
//! Ring and field elements are plain `usize` indices in `0..order`,
//! index 0 always the additive identity — designs and layouts built on
//! top stay table-friendly (Condition 4 of the paper: the logical→
//! physical map must be a small lookup table plus O(1) arithmetic).
//!
//! ```
//! use pdl_algebra::{FiniteField, Ring};
//! let f = FiniteField::new(9); // GF(3^2)
//! let a = 5;
//! let inv = Ring::inv(&f, a).unwrap();
//! assert_eq!(Ring::mul(&f, a, inv), 1);
//! ```

#![warn(missing_docs)]

pub mod gf;
pub mod gf256;
pub mod nt;
pub mod poly;
pub mod ring;

pub use gf::FiniteField;
pub use poly::Poly;
pub use ring::{FiniteRing, ProductRing, Ring, Zn};
