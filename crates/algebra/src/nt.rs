//! Elementary number theory used throughout the layout constructions.
//!
//! Everything here operates on `u64` and is exact. Factorization is by
//! trial division, which is ample for the parameter ranges the paper
//! explores (disk counts `v ≤ 10,000`, layout sweeps up to ~10^7).

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow in debug builds; the paper's
/// parameter ranges keep `lcm(b, v)` far below `u64::MAX`.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        return (a, 1, 0);
    }
    let (g, x, y) = extended_gcd(b, a % b);
    (g, y, x - (a / b) * y)
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) = 1`.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = extended_gcd((a % m) as i64, m as i64);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(m as i64) as u64)
}

/// Modular exponentiation `base^exp mod m` (m > 0, m² must fit in u64 —
/// true for all moduli used here, which stay below 2^31).
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 0, "modulus must be positive");
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    acc
}

/// Deterministic primality test by trial division.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    if n.is_multiple_of(3) {
        return n == 3;
    }
    let mut d = 5u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) || n.is_multiple_of(d + 2) {
            return false;
        }
        d += 6;
    }
    true
}

/// Factorization into `(prime, exponent)` pairs, primes ascending.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let mut push = |p: u64, n: &mut u64| {
        let mut e = 0u32;
        while (*n).is_multiple_of(p) {
            *n /= p;
            e += 1;
        }
        if e > 0 {
            out.push((p, e));
        }
    };
    push(2, &mut n);
    push(3, &mut n);
    let mut d = 5u64;
    while d.saturating_mul(d) <= n {
        push(d, &mut n);
        push(d + 2, &mut n);
        d += 6;
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// Distinct prime divisors, ascending.
pub fn prime_divisors(n: u64) -> Vec<u64> {
    factorize(n).into_iter().map(|(p, _)| p).collect()
}

/// If `n = p^e` for a prime `p` and `e ≥ 1`, returns `Some((p, e))`.
pub fn prime_power(n: u64) -> Option<(u64, u32)> {
    let f = factorize(n);
    if f.len() == 1 {
        Some(f[0])
    } else {
        None
    }
}

/// Returns true when `n` is a prime power `p^e`, `e ≥ 1`.
pub fn is_prime_power(n: u64) -> bool {
    prime_power(n).is_some()
}

/// `M(v) = min { p_i^{e_i} }` over the factorization `v = Π p_i^{e_i}` —
/// the Theorem 2 bound: a ring-based block design on `v` elements with
/// block size `k` exists iff `k ≤ M(v)`.
pub fn min_prime_power_factor(v: u64) -> u64 {
    factorize(v).into_iter().map(|(p, e)| p.pow(e)).min().unwrap_or(0)
}

/// All divisors of `n`, ascending.
pub fn divisors(n: u64) -> Vec<u64> {
    let mut ds = vec![1u64];
    for (p, e) in factorize(n) {
        let prev = ds.clone();
        let mut pe = 1u64;
        for _ in 0..e {
            pe *= p;
            ds.extend(prev.iter().map(|d| d * pe));
        }
    }
    ds.sort_unstable();
    ds
}

/// Largest prime power `q ≤ n` (at least 2 required; panics for `n < 2`).
pub fn prev_prime_power(n: u64) -> u64 {
    assert!(n >= 2, "no prime power below 2");
    (2..=n).rev().find(|&q| is_prime_power(q)).expect("2 is a prime power")
}

/// All prime powers in `lo..=hi`, ascending.
pub fn prime_powers_in(lo: u64, hi: u64) -> Vec<u64> {
    (lo.max(2)..=hi).filter(|&q| is_prime_power(q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(35, 64), 1);
        assert_eq!(gcd(48, 36), 12);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(21, 6), 42);
        assert_eq!(lcm(13, 13), 13);
    }

    #[test]
    fn extended_gcd_identity() {
        for (a, b) in [(240i64, 46i64), (17, 5), (1, 1), (100, 75)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(a * x + b * y, g);
            assert_eq!(g, gcd(a as u64, b as u64) as i64);
        }
    }

    #[test]
    fn mod_inverse_works() {
        assert_eq!(mod_inverse(3, 7), Some(5));
        assert_eq!(mod_inverse(2, 4), None);
        assert_eq!(mod_inverse(1, 1), Some(0));
        for m in 2..50u64 {
            for a in 1..m {
                if gcd(a, m) == 1 {
                    let inv = mod_inverse(a, m).unwrap();
                    assert_eq!(a * inv % m, 1, "a={a} m={m}");
                } else {
                    assert_eq!(mod_inverse(a, m), None);
                }
            }
        }
    }

    #[test]
    fn mod_pow_matches_naive() {
        for m in 2..20u64 {
            for b in 0..m {
                let mut acc = 1 % m;
                for e in 0..12u64 {
                    assert_eq!(mod_pow(b, e, m), acc, "b={b} e={e} m={m}");
                    acc = acc * b % m;
                }
            }
        }
    }

    #[test]
    fn primality_small() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn primality_larger() {
        assert!(is_prime(7919));
        assert!(is_prime(104_729));
        assert!(!is_prime(104_730));
        assert!(!is_prime(7919 * 7919));
    }

    #[test]
    fn factorize_roundtrip() {
        for n in 2..2000u64 {
            let f = factorize(n);
            let prod: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
            assert_eq!(prod, n);
            for &(p, _) in &f {
                assert!(is_prime(p), "{p} not prime (n={n})");
            }
            for w in f.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn prime_power_detection() {
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(7), Some((7, 1)));
        assert_eq!(prime_power(12), None);
        assert_eq!(prime_power(1), None);
        assert_eq!(prime_power(0), None);
    }

    #[test]
    fn min_prime_power_factor_examples() {
        // v = 12 = 2^2 * 3 → M(v) = min(4, 3) = 3
        assert_eq!(min_prime_power_factor(12), 3);
        // v = 100 = 2^2 * 5^2 → min(4, 25) = 4
        assert_eq!(min_prime_power_factor(100), 4);
        // prime powers are their own M(v)
        assert_eq!(min_prime_power_factor(49), 49);
        // v = 30 = 2*3*5 → 2
        assert_eq!(min_prime_power_factor(30), 2);
    }

    #[test]
    fn divisors_examples() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(49), vec![1, 7, 49]);
        for n in 1..200u64 {
            let ds = divisors(n);
            for &d in &ds {
                assert_eq!(n % d, 0);
            }
            let count = (1..=n).filter(|d| n % d == 0).count();
            assert_eq!(ds.len(), count);
        }
    }

    #[test]
    fn prev_prime_power_examples() {
        assert_eq!(prev_prime_power(10), 9);
        assert_eq!(prev_prime_power(8), 8);
        assert_eq!(prev_prime_power(2), 2);
        assert_eq!(prev_prime_power(100), 97);
    }

    #[test]
    fn prime_powers_in_range() {
        assert_eq!(prime_powers_in(2, 16), vec![2, 3, 4, 5, 7, 8, 9, 11, 13, 16]);
    }
}
