//! `GF(2^8)` specialized for byte-granular erasure coding — the field
//! behind the P+Q (RAID-6-style) double-parity scheme in `pdl-store`.
//!
//! [`FiniteField`](crate::FiniteField) is the general table-driven
//! field used by the layout constructions; this module is its
//! fixed-size sibling tuned for the data path: compile-time exp/log
//! tables over the standard RAID-6 polynomial `x^8+x^4+x^3+x^2+1`
//! (0x11d, for which `x` = 2 is primitive), branch-free per-byte
//! multiply, and word-wide slice kernels ([`xor_slice`],
//! [`mul_slice`], [`mul_add_slice`]) that process eight bytes per
//! step: XOR over `u64` lanes, multiplication via 4-bit split (nibble)
//! product tables — 32 bytes of lookup state per coefficient, so the
//! tables live in L1 for the whole slice walk. Every wide kernel keeps
//! a byte-at-a-time `*_scalar` twin as the property-test oracle.
//!
//! ## The P+Q equations
//!
//! A stripe with data units `D_0..D_{n-1}` (indexed by their slot `j`)
//! carries two parity units:
//!
//! ```text
//! P = D_0 ^ D_1 ^ ... ^ D_{n-1}              (plain XOR)
//! Q = g^{j_0}·D_0 ^ g^{j_1}·D_1 ^ ...        (g = GENERATOR = 2)
//! ```
//!
//! Any two simultaneous erasures are solvable: with partial sums over
//! the survivors, the two lost values satisfy a 2×2 linear system over
//! `GF(2^8)` whose solution [`two_erasure_coeffs`] precomputes.

/// The RAID-6 field polynomial `x^8 + x^4 + x^3 + x^2 + 1`.
pub const GF256_POLY: u16 = 0x11d;

/// The fixed generator (primitive element) `g = x = 2`.
pub const GENERATOR: u8 = 2;

/// `exp` doubled to 510 entries so `exp[log a + log b]` needs no modulo.
const fn build_exp() -> [u8; 510] {
    let mut exp = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF256_POLY;
        }
        i += 1;
    }
    exp
}

const fn build_log(exp: &[u8; 510]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

const EXP: [u8; 510] = build_exp();
const LOG: [u8; 256] = build_log(&EXP);

/// Field multiplication `a · b`.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse; `None` for 0.
#[inline]
pub fn inv(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(EXP[255 - LOG[a as usize] as usize])
    }
}

/// `g^e` for the fixed generator — the Q-parity coefficient of data
/// slot `e` (reduced mod 255, so any slot index is valid).
#[inline]
pub fn gen_pow(e: usize) -> u8 {
    EXP[e % 255]
}

/// `a / b`. Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b).expect("division by zero in GF(256)"))
}

/// The two 16-entry nibble product tables of `c`: `lo[n] = c·n` and
/// `hi[n] = c·(n << 4)`, so `c·b = lo[b & 0xf] ^ hi[b >> 4]` — the
/// 4-bit split that keeps the whole lookup state in 32 bytes (two L1
/// cache lines at worst) instead of a 256-byte row rebuilt per call.
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for n in 1..16u8 {
        lo[n as usize] = mul(c, n);
        hi[n as usize] = mul(c, n << 4);
    }
    (lo, hi)
}

/// Below this length building the nibble tables costs more than it
/// saves; fall back to the direct exp/log form (2 lookups per byte).
const WIDE_THRESHOLD: usize = 32;

/// XORs `src` into `dst`, eight bytes per step over `u64` lanes — the
/// P-parity and syndrome-accumulation kernel of every read, write,
/// degraded and rebuild path.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % 8;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d8, s8) in dc.chunks_exact_mut(8).zip(sc.chunks_exact(8)) {
        let d = u64::from_ne_bytes(d8.try_into().unwrap());
        let s = u64::from_ne_bytes(s8.try_into().unwrap());
        d8.copy_from_slice(&(d ^ s).to_ne_bytes());
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// Byte-at-a-time reference for [`xor_slice`] (property-test oracle).
pub fn xor_slice_scalar(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Byte-at-a-time reference for [`mul_slice`] (property-test oracle
/// and short-slice fallback): two exp/log lookups per nonzero byte.
pub fn mul_slice_scalar(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let lc = LOG[c as usize] as usize;
    for d in dst {
        if *d != 0 {
            *d = EXP[lc + LOG[*d as usize] as usize];
        }
    }
}

/// Byte-at-a-time reference for [`mul_add_slice`] (property-test
/// oracle and short-slice fallback).
pub fn mul_add_slice_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice_scalar(dst, src);
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

/// `dst[i] = c · dst[i]` for every byte: nibble-table lookups, eight
/// bytes per load/store step.
pub fn mul_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    if dst.len() < WIDE_THRESHOLD {
        mul_slice_scalar(dst, c);
        return;
    }
    let (lo, hi) = nibble_tables(c);
    let split = dst.len() - dst.len() % 8;
    let (dc, dr) = dst.split_at_mut(split);
    for d8 in dc.chunks_exact_mut(8) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(d8.iter()) {
            *p = lo[(b & 0xf) as usize] ^ hi[(b >> 4) as usize];
        }
        d8.copy_from_slice(&prod);
    }
    for d in dr {
        *d = lo[(*d & 0xf) as usize] ^ hi[(*d >> 4) as usize];
    }
}

/// `dst[i] ^= c · src[i]` — the fused kernel of Q-parity updates and
/// syndrome accumulation: nibble-table lookups with the accumulate
/// done as one `u64` XOR per eight bytes.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    if dst.len() < WIDE_THRESHOLD {
        mul_add_slice_scalar(dst, src, c);
        return;
    }
    let (lo, hi) = nibble_tables(c);
    let split = dst.len() - dst.len() % 8;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d8, s8) in dc.chunks_exact_mut(8).zip(sc.chunks_exact(8)) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(s8.iter()) {
            *p = lo[(b & 0xf) as usize] ^ hi[(b >> 4) as usize];
        }
        let d = u64::from_ne_bytes(d8.try_into().unwrap()) ^ u64::from_ne_bytes(prod);
        d8.copy_from_slice(&d.to_ne_bytes());
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= lo[(*s & 0xf) as usize] ^ hi[(*s >> 4) as usize];
    }
}

/// Solves the double-erasure system for two lost **data** units at
/// Q-coefficients `gx` and `gy` (`gx ≠ gy`), given the syndromes
///
/// ```text
/// S_p = D_x ^ D_y            (P-equation partial sum)
/// S_q = gx·D_x ^ gy·D_y      (Q-equation partial sum)
/// ```
///
/// Returns `(a, b)` such that `D_x = a·S_p ^ b·S_q` (and then
/// `D_y = S_p ^ D_x`). Precomputing the coefficients keeps the
/// per-byte reconstruction loop to two table lookups and an XOR.
///
/// # Panics
/// Panics if `gx == gy` (the system is singular — two data units of
/// one stripe must carry distinct Q coefficients).
pub fn two_erasure_coeffs(gx: u8, gy: u8) -> (u8, u8) {
    assert_ne!(gx, gy, "two-erasure solve needs distinct Q coefficients");
    let denom = inv(gx ^ gy).expect("gx ^ gy is nonzero for gx != gy");
    (mul(gy, denom), denom)
}

/// Applies [`two_erasure_coeffs`] to whole syndrome buffers: on return
/// `sp` holds `D_x` and `sq` holds `D_y`.
pub fn solve_two_erasures(sp: &mut [u8], sq: &mut [u8], gx: u8, gy: u8) {
    debug_assert_eq!(sp.len(), sq.len());
    let (a, b) = two_erasure_coeffs(gx, gy);
    // D_x = a·S_p ^ b·S_q, computed into sq's buffer first so S_p
    // survives for D_y = S_p ^ D_x.
    mul_slice(sq, b);
    mul_add_slice(sq, sp, a);
    for (p, q) in sp.iter_mut().zip(sq.iter()) {
        *p ^= q; // now: sp = S_p ^ D_x = D_y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_exhaustive() {
        // Identity, zero, commutativity on the full 256×256 table.
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn associativity_and_distributivity_sampled() {
        for i in 0..64u32 {
            let a = (i * 37 + 11) as u8;
            let b = (i * 91 + 5) as u8;
            let c = (i * 53 + 101) as u8;
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
        }
    }

    #[test]
    fn inverses_roundtrip() {
        assert_eq!(inv(0), None);
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a).unwrap()), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        for e in 0..255 {
            let v = gen_pow(e);
            assert!(!seen[v as usize], "g^{e} repeats");
            seen[v as usize] = true;
        }
        assert_eq!(gen_pow(0), 1);
        assert_eq!(gen_pow(1), GENERATOR);
        assert_eq!(gen_pow(255), 1, "order divides 255");
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less schoolbook multiply reduced by the polynomial.
        fn slow(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    acc ^= (a as u16) << bit;
                }
            }
            for bit in (8..16).rev() {
                if acc & (1 << bit) != 0 {
                    acc ^= GF256_POLY << (bit - 8);
                }
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn slice_kernels_match_scalar() {
        let src: Vec<u8> = (0..256).map(|i| (i * 7 + 3) as u8).collect();
        let mut dst: Vec<u8> = (0..256).map(|i| (i * 13 + 1) as u8).collect();
        let snapshot = dst.clone();
        mul_add_slice(&mut dst, &src, 0x1d);
        for i in 0..256 {
            assert_eq!(dst[i], snapshot[i] ^ mul(src[i], 0x1d));
        }
        mul_slice(&mut dst, 0x53);
        for i in 0..256 {
            assert_eq!(dst[i], mul(snapshot[i] ^ mul(src[i], 0x1d), 0x53));
        }
        mul_slice(&mut dst, 0);
        assert!(dst.iter().all(|&b| b == 0));

        // Short buffers take the direct (row-free) path; same result.
        for len in [1usize, 33, 255] {
            let src: Vec<u8> = (0..len).map(|i| (i * 5) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 3 + 7) as u8).collect();
            let snapshot = dst.clone();
            mul_add_slice(&mut dst, &src, 0x8e);
            for i in 0..len {
                assert_eq!(dst[i], snapshot[i] ^ mul(src[i], 0x8e), "len {len}");
            }
            mul_slice(&mut dst, 0x02);
            for i in 0..len {
                assert_eq!(dst[i], mul(snapshot[i] ^ mul(src[i], 0x8e), 2), "len {len}");
            }
        }
    }

    #[test]
    fn two_erasure_solve_recovers_both() {
        // Encode two data bytes into syndromes, solve, compare.
        for x in 0..16usize {
            for y in 16..32usize {
                let (gx, gy) = (gen_pow(x), gen_pow(y));
                for dx in [0u8, 1, 0x47, 0xff] {
                    for dy in [0u8, 9, 0x80, 0xfe] {
                        let sp = dx ^ dy;
                        let sq = mul(gx, dx) ^ mul(gy, dy);
                        let (a, b) = two_erasure_coeffs(gx, gy);
                        let got_x = mul(a, sp) ^ mul(b, sq);
                        let got_y = sp ^ got_x;
                        assert_eq!((got_x, got_y), (dx, dy), "x={x} y={y}");
                    }
                }
            }
        }
    }

    #[test]
    fn solve_two_erasures_buffers() {
        let dx: Vec<u8> = (0..64).map(|i| (i * 11 + 2) as u8).collect();
        let dy: Vec<u8> = (0..64).map(|i| (i * 29 + 7) as u8).collect();
        let (gx, gy) = (gen_pow(3), gen_pow(9));
        let mut sp: Vec<u8> = dx.iter().zip(&dy).map(|(a, b)| a ^ b).collect();
        let mut sq: Vec<u8> = dx.iter().zip(&dy).map(|(a, b)| mul(gx, *a) ^ mul(gy, *b)).collect();
        solve_two_erasures(&mut sp, &mut sq, gx, gy);
        assert_eq!(sq, dx, "sq buffer holds D_x");
        assert_eq!(sp, dy, "sp buffer holds D_y");
    }

    #[test]
    #[should_panic(expected = "distinct Q coefficients")]
    fn equal_coefficients_rejected() {
        two_erasure_coeffs(5, 5);
    }
}
