//! Dense polynomials over the prime field `Z_p`, used only to bootstrap
//! `GF(p^m)` construction: finding an irreducible modulus and multiplying
//! field elements before the exp/log tables exist.
//!
//! Coefficients are `u64` values in `0..p`, index = degree, no trailing
//! zeros (the zero polynomial is the empty vector).

use crate::nt::{mod_inverse, prime_divisors};

/// A polynomial over `Z_p`. Immutable value type; all ops take `p`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Poly(pub Vec<u64>);

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly(Vec::new())
    }

    /// The constant polynomial `c` (reduced mod p).
    pub fn constant(c: u64, p: u64) -> Self {
        Self::from_coeffs(vec![c % p])
    }

    /// `x` (the monomial of degree 1).
    pub fn x() -> Self {
        Poly(vec![0, 1])
    }

    /// Builds from a coefficient vector, trimming trailing zeros.
    pub fn from_coeffs(mut c: Vec<u64>) -> Self {
        while c.last() == Some(&0) {
            c.pop();
        }
        Poly(c)
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// Degree; the zero polynomial has no degree (returns `None`).
    pub fn degree(&self) -> Option<usize> {
        self.0.len().checked_sub(1)
    }

    /// Leading coefficient (0 for the zero polynomial).
    pub fn leading(&self) -> u64 {
        *self.0.last().unwrap_or(&0)
    }

    /// Addition in `Z_p[x]`.
    pub fn add(&self, other: &Poly, p: u64) -> Poly {
        let n = self.0.len().max(other.0.len());
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = self.0.get(i).copied().unwrap_or(0);
            let b = other.0.get(i).copied().unwrap_or(0);
            *slot = (a + b) % p;
        }
        Poly::from_coeffs(out)
    }

    /// Subtraction in `Z_p[x]`.
    pub fn sub(&self, other: &Poly, p: u64) -> Poly {
        let n = self.0.len().max(other.0.len());
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = self.0.get(i).copied().unwrap_or(0);
            let b = other.0.get(i).copied().unwrap_or(0);
            *slot = (a + p - b) % p;
        }
        Poly::from_coeffs(out)
    }

    /// Schoolbook multiplication in `Z_p[x]`.
    pub fn mul(&self, other: &Poly, p: u64) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0u64; self.0.len() + other.0.len() - 1];
        for (i, &a) in self.0.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.0.iter().enumerate() {
                out[i + j] = (out[i + j] + a * b) % p;
            }
        }
        Poly::from_coeffs(out)
    }

    /// Remainder of `self` divided by `modulus` (which must be nonzero).
    pub fn rem(&self, modulus: &Poly, p: u64) -> Poly {
        assert!(!modulus.is_zero(), "division by zero polynomial");
        let dm = modulus.degree().unwrap();
        let lead_inv = mod_inverse(modulus.leading(), p).expect("leading coeff must be a unit");
        let mut r = self.0.clone();
        while r.len() > dm {
            let c = *r.last().unwrap();
            let shift = r.len() - 1 - dm;
            if c != 0 {
                let f = c * lead_inv % p;
                for (i, &m) in modulus.0.iter().enumerate() {
                    let idx = shift + i;
                    r[idx] = (r[idx] + p - f * m % p) % p;
                }
            }
            r.pop();
            while r.last() == Some(&0) {
                r.pop();
            }
            if r.len() <= dm {
                break;
            }
        }
        Poly::from_coeffs(r)
    }

    /// Polynomial gcd, made monic.
    pub fn gcd(&self, other: &Poly, p: u64) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b, p);
            a = b;
            b = r;
        }
        a.monic(p)
    }

    /// Scales so the leading coefficient is 1 (zero stays zero).
    pub fn monic(&self, p: u64) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let inv = mod_inverse(self.leading(), p).expect("leading coeff must be a unit");
        Poly::from_coeffs(self.0.iter().map(|&c| c * inv % p).collect())
    }

    /// `self^e mod modulus` by square-and-multiply.
    pub fn pow_mod(&self, mut e: u64, modulus: &Poly, p: u64) -> Poly {
        let mut base = self.rem(modulus, p);
        let mut acc = Poly::constant(1, p);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base, p).rem(modulus, p);
            }
            base = base.mul(&base, p).rem(modulus, p);
            e >>= 1;
        }
        acc
    }

    /// `self^(p^j) mod modulus` — iterated Frobenius, used by the
    /// irreducibility test. Computes by `j` successive `pow_mod(p)` steps.
    fn frobenius_iter(&self, j: u32, modulus: &Poly, p: u64) -> Poly {
        let mut acc = self.rem(modulus, p);
        for _ in 0..j {
            acc = acc.pow_mod(p, modulus, p);
        }
        acc
    }
}

/// Rabin's irreducibility test: monic `f` of degree `m` over `Z_p` is
/// irreducible iff `x^(p^m) ≡ x (mod f)` and, for every prime `q | m`,
/// `gcd(x^(p^(m/q)) − x, f) = 1`.
pub fn is_irreducible(f: &Poly, p: u64) -> bool {
    let m = match f.degree() {
        None | Some(0) => return false,
        Some(m) => m as u32,
    };
    if m == 1 {
        return true;
    }
    let x = Poly::x();
    // x^(p^m) mod f must equal x.
    if x.frobenius_iter(m, f, p) != x.rem(f, p) {
        return false;
    }
    for q in prime_divisors(m as u64) {
        let j = m / q as u32;
        let xpj = x.frobenius_iter(j, f, p);
        let diff = xpj.sub(&x, p);
        let g = diff.gcd(f, p);
        if g.degree() != Some(0) {
            return false;
        }
    }
    true
}

/// Finds a monic irreducible polynomial of degree `m` over `Z_p` by
/// enumerating candidates in lexicographic coefficient order. Existence is
/// guaranteed for every prime `p` and `m ≥ 1`.
pub fn find_irreducible(p: u64, m: u32) -> Poly {
    assert!(m >= 1, "degree must be at least 1");
    if m == 1 {
        return Poly::x(); // x itself: GF(p) needs no extension
    }
    let m = m as usize;
    // Enumerate lower coefficients as base-p counters; leading coeff = 1.
    let total = (p as u128).pow(m as u32);
    for n in 0..total {
        let mut coeffs = Vec::with_capacity(m + 1);
        let mut t = n;
        for _ in 0..m {
            coeffs.push((t % p as u128) as u64);
            t /= p as u128;
        }
        coeffs.push(1);
        let f = Poly::from_coeffs(coeffs);
        if is_irreducible(&f, p) {
            return f;
        }
    }
    unreachable!("an irreducible polynomial of degree {m} over GF({p}) always exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(c: &[u64]) -> Poly {
        Poly::from_coeffs(c.to_vec())
    }

    #[test]
    fn trim_and_degree() {
        assert!(poly(&[0, 0]).is_zero());
        assert_eq!(poly(&[3]).degree(), Some(0));
        assert_eq!(poly(&[1, 2, 0, 0]).degree(), Some(1));
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn add_sub_roundtrip() {
        let p = 7;
        let a = poly(&[1, 2, 3]);
        let b = poly(&[6, 5]);
        let s = a.add(&b, p);
        assert_eq!(s.sub(&b, p), a);
        assert_eq!(s.sub(&a, p), b);
    }

    #[test]
    fn mul_examples() {
        // (x+1)(x+2) = x^2 + 3x + 2 over Z_5
        let a = poly(&[1, 1]);
        let b = poly(&[2, 1]);
        assert_eq!(a.mul(&b, 5), poly(&[2, 3, 1]));
        // (x+1)^2 = x^2 + 1 over Z_2
        assert_eq!(a.mul(&a, 2), poly(&[1, 0, 1]));
        assert_eq!(a.mul(&Poly::zero(), 5), Poly::zero());
    }

    #[test]
    fn rem_examples() {
        // x^2 mod (x^2 + x + 1) = -(x+1) = x+1 over Z_2
        let f = poly(&[1, 1, 1]);
        let x2 = poly(&[0, 0, 1]);
        assert_eq!(x2.rem(&f, 2), poly(&[1, 1]));
        // division identity: a = q*f + r exercised via rem(a + f*b) == rem(a)
        let a = poly(&[3, 1, 4, 1]);
        let b = poly(&[2, 2]);
        let lhs = a.add(&f.mul(&b, 5), 5).rem(&f, 5);
        assert_eq!(lhs, a.rem(&f, 5));
    }

    #[test]
    fn gcd_examples() {
        let p = 7;
        // gcd((x+1)(x+2), (x+1)(x+3)) = x+1
        let a = poly(&[1, 1]).mul(&poly(&[2, 1]), p);
        let b = poly(&[1, 1]).mul(&poly(&[3, 1]), p);
        assert_eq!(a.gcd(&b, p), poly(&[1, 1]));
    }

    #[test]
    fn pow_mod_small() {
        let f = poly(&[1, 1, 1]); // x^2+x+1 over Z_2; GF(4), mult order of x is 3
        let x = Poly::x();
        assert_eq!(x.pow_mod(3, &f, 2), Poly::constant(1, 2));
        assert_eq!(x.pow_mod(1, &f, 2), x);
        assert_eq!(x.pow_mod(4, &f, 2), x);
    }

    #[test]
    fn known_irreducibles() {
        assert!(is_irreducible(&poly(&[1, 1, 1]), 2)); // x^2+x+1
        assert!(!is_irreducible(&poly(&[1, 0, 1]), 2)); // x^2+1 = (x+1)^2
        assert!(is_irreducible(&poly(&[1, 1, 0, 1]), 2)); // x^3+x+1
        assert!(is_irreducible(&poly(&[1, 0, 0, 1, 1]), 2)); // x^4+x^3+1
        assert!(!is_irreducible(&poly(&[1, 0, 0, 0, 1]), 2)); // x^4+1
        assert!(is_irreducible(&poly(&[1, 0, 1]), 3)); // x^2+1 over Z_3
        assert!(!is_irreducible(&poly(&[2, 0, 1]), 3)); // x^2+2 = (x+1)(x+2)
    }

    #[test]
    fn irreducible_product_detected() {
        // Every product of two monic irreducibles of degree 2 over Z_3 must fail.
        let p = 3;
        let irr2: Vec<Poly> =
            (0..9).map(|n| poly(&[n % 3, n / 3, 1])).filter(|f| is_irreducible(f, p)).collect();
        assert_eq!(irr2.len(), 3); // (9-3)/2 = 3 monic irreducible quadratics
        for a in &irr2 {
            for b in &irr2 {
                assert!(!is_irreducible(&a.mul(b, p), p));
            }
        }
    }

    #[test]
    fn find_irreducible_all_small() {
        for p in [2u64, 3, 5, 7, 11, 13] {
            for m in 1..=4u32 {
                let f = find_irreducible(p, m);
                assert_eq!(f.degree(), Some(m as usize));
                assert_eq!(f.leading(), 1);
                assert!(is_irreducible(&f, p) || m == 1);
            }
        }
    }

    #[test]
    fn find_irreducible_bigger_degrees() {
        let f = find_irreducible(2, 10); // GF(1024)
        assert_eq!(f.degree(), Some(10));
        assert!(is_irreducible(&f, 2));
        let g = find_irreducible(3, 5); // GF(243)
        assert!(is_irreducible(&g, 3));
    }
}
