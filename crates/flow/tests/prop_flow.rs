//! Property-based tests for the flow substrate: max-flow/min-cut
//! consistency on random graphs, lower-bound feasibility, and matching
//! optimality.

use pdl_flow::{
    assign_parity_two_phase, hopcroft_karp, max_flow_with_lower_bounds, max_matching_size,
    BoundedEdge, FlowNetwork, ParityInstance,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(seed: u64, n: usize, m: usize) -> Vec<(usize, usize, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .filter_map(|_| {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            (u != v).then(|| (u, v, rng.random_range(0..12)))
        })
        .collect()
}

/// Exhaustive min-cut by enumerating all source-side subsets (small n).
fn brute_min_cut(n: usize, edges: &[(usize, usize, i64)], s: usize, t: usize) -> i64 {
    let mut best = i64::MAX;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue;
        }
        let cut: i64 = edges
            .iter()
            .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-flow equals min-cut on random small graphs.
    #[test]
    fn maxflow_equals_brute_mincut(seed in any::<u64>(), n in 3usize..8, m in 4usize..20) {
        let edges = random_graph(seed, n, m);
        let mut g = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            g.add_edge(u, v, c);
        }
        let flow = g.max_flow(0, n - 1);
        let cut = brute_min_cut(n, &edges, 0, n - 1);
        prop_assert_eq!(flow, cut);
    }

    /// Lower-bounded flows respect all bounds and conservation.
    #[test]
    fn bounded_flow_valid(seed in any::<u64>(), n in 3usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(0.5) {
                    let upper = rng.random_range(1..8);
                    let lower = rng.random_range(0..=upper.min(2));
                    edges.push(BoundedEdge { from: u, to: v, lower, upper });
                }
            }
        }
        if let Some(f) = max_flow_with_lower_bounds(n, &edges, 0, n - 1) {
            let mut net = vec![0i64; n];
            for (e, fl) in edges.iter().zip(&f.edge_flows) {
                prop_assert!(*fl >= e.lower && *fl <= e.upper);
                net[e.from] -= fl;
                net[e.to] += fl;
            }
            for (i, x) in net.iter().enumerate() {
                if i == 0 {
                    prop_assert_eq!(*x, -f.value);
                } else if i == n - 1 {
                    prop_assert_eq!(*x, f.value);
                } else {
                    prop_assert_eq!(*x, 0);
                }
            }
        }
    }

    /// Hopcroft–Karp matchings are maximal: no augmenting edge remains
    /// between two unmatched vertices.
    #[test]
    fn matching_is_maximal(seed in any::<u64>(), nl in 1usize..8, nr in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj: Vec<Vec<usize>> = (0..nl)
            .map(|_| (0..nr).filter(|_| rng.random_bool(0.35)).collect())
            .collect();
        let m = hopcroft_karp(nl, nr, &adj);
        let mut right_used = vec![false; nr];
        for r in m.iter().flatten() {
            right_used[*r] = true;
        }
        for (l, ml) in m.iter().enumerate() {
            if ml.is_none() {
                for &r in &adj[l] {
                    prop_assert!(right_used[r], "edge ({l},{r}) would extend the matching");
                }
            }
        }
    }

    /// König-style sanity: matching size never exceeds either side.
    #[test]
    fn matching_size_bounds(seed in any::<u64>(), nl in 1usize..9, nr in 1usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj: Vec<Vec<usize>> = (0..nl)
            .map(|_| (0..nr).filter(|_| rng.random_bool(0.4)).collect())
            .collect();
        let sz = max_matching_size(nl, nr, &adj);
        prop_assert!(sz <= nl && sz <= nr);
        let edges: usize = adj.iter().map(Vec::len).sum();
        prop_assert!(sz <= edges);
    }

    /// The two-phase parity assignment balances random regular-ish
    /// instances to floor/ceil.
    #[test]
    fn two_phase_random_instances(seed in any::<u64>(), v in 3usize..9, b in 3usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stripes: Vec<Vec<usize>> = (0..b)
            .map(|_| {
                let k = rng.random_range(2..=v.min(4));
                let mut disks: Vec<usize> = (0..v).collect();
                for i in (1..disks.len()).rev() {
                    let j = rng.random_range(0..=i);
                    disks.swap(i, j);
                }
                disks.truncate(k);
                disks
            })
            .collect();
        let inst = ParityInstance { v, stripes };
        let slots = assign_parity_two_phase(&inst).expect("always solvable");
        let loads = inst.loads();
        let mut counts = vec![0usize; v];
        for (s, &slot) in inst.stripes.iter().zip(&slots) {
            counts[s[slot]] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            prop_assert!(c as f64 >= loads[d].floor() - 1e-9);
            prop_assert!(c as f64 <= loads[d].ceil() + 1e-9);
        }
    }
}
