//! Property-style tests for the flow substrate: max-flow/min-cut
//! consistency on random graphs, lower-bound feasibility, and matching
//! optimality. Uses seeded random sampling (the offline environment
//! has no `proptest`) with 64 cases per property.

use pdl_flow::{
    assign_parity_two_phase, hopcroft_karp, max_flow_with_lower_bounds, max_matching_size,
    BoundedEdge, FlowNetwork, ParityInstance,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_graph(seed: u64, n: usize, m: usize) -> Vec<(usize, usize, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .filter_map(|_| {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            (u != v).then(|| (u, v, rng.random_range(0..12)))
        })
        .collect()
}

/// Exhaustive min-cut by enumerating all source-side subsets (small n).
fn brute_min_cut(n: usize, edges: &[(usize, usize, i64)], s: usize, t: usize) -> i64 {
    let mut best = i64::MAX;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue;
        }
        let cut: i64 = edges
            .iter()
            .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(cut);
    }
    best
}

/// Max-flow equals min-cut on random small graphs.
#[test]
fn maxflow_equals_brute_mincut() {
    let mut meta = StdRng::seed_from_u64(0x3a7f);
    for _ in 0..CASES {
        let seed: u64 = meta.random_range(0..u64::MAX);
        let n = meta.random_range(3usize..8);
        let m = meta.random_range(4usize..20);
        let edges = random_graph(seed, n, m);
        let mut g = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            g.add_edge(u, v, c);
        }
        let flow = g.max_flow(0, n - 1);
        let cut = brute_min_cut(n, &edges, 0, n - 1);
        assert_eq!(flow, cut);
    }
}

/// Lower-bounded flows respect all bounds and conservation.
#[test]
fn bounded_flow_valid() {
    let mut meta = StdRng::seed_from_u64(0xb0f1);
    for _ in 0..CASES {
        let seed: u64 = meta.random_range(0..u64::MAX);
        let n = meta.random_range(3usize..7);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(0.5) {
                    let upper = rng.random_range(1..8);
                    let lower = rng.random_range(0..=upper.min(2));
                    edges.push(BoundedEdge { from: u, to: v, lower, upper });
                }
            }
        }
        if let Some(f) = max_flow_with_lower_bounds(n, &edges, 0, n - 1) {
            let mut net = vec![0i64; n];
            for (e, fl) in edges.iter().zip(&f.edge_flows) {
                assert!(*fl >= e.lower && *fl <= e.upper);
                net[e.from] -= fl;
                net[e.to] += fl;
            }
            for (i, x) in net.iter().enumerate() {
                if i == 0 {
                    assert_eq!(*x, -f.value);
                } else if i == n - 1 {
                    assert_eq!(*x, f.value);
                } else {
                    assert_eq!(*x, 0);
                }
            }
        }
    }
}

/// Hopcroft–Karp matchings are maximal: no augmenting edge remains
/// between two unmatched vertices.
#[test]
fn matching_is_maximal() {
    let mut meta = StdRng::seed_from_u64(0x33a7);
    for _ in 0..CASES {
        let seed: u64 = meta.random_range(0..u64::MAX);
        let nl = meta.random_range(1usize..8);
        let nr = meta.random_range(1usize..8);
        let mut rng = StdRng::seed_from_u64(seed);
        let adj: Vec<Vec<usize>> =
            (0..nl).map(|_| (0..nr).filter(|_| rng.random_bool(0.35)).collect()).collect();
        let m = hopcroft_karp(nl, nr, &adj);
        let mut right_used = vec![false; nr];
        for r in m.iter().flatten() {
            right_used[*r] = true;
        }
        for (l, ml) in m.iter().enumerate() {
            if ml.is_none() {
                for &r in &adj[l] {
                    assert!(right_used[r], "edge ({l},{r}) would extend the matching");
                }
            }
        }
    }
}

/// König-style sanity: matching size never exceeds either side.
#[test]
fn matching_size_bounds() {
    let mut meta = StdRng::seed_from_u64(0x51ce);
    for _ in 0..CASES {
        let seed: u64 = meta.random_range(0..u64::MAX);
        let nl = meta.random_range(1usize..9);
        let nr = meta.random_range(1usize..9);
        let mut rng = StdRng::seed_from_u64(seed);
        let adj: Vec<Vec<usize>> =
            (0..nl).map(|_| (0..nr).filter(|_| rng.random_bool(0.4)).collect()).collect();
        let sz = max_matching_size(nl, nr, &adj);
        assert!(sz <= nl && sz <= nr);
        let edges: usize = adj.iter().map(Vec::len).sum();
        assert!(sz <= edges);
    }
}

/// The two-phase parity assignment balances random regular-ish
/// instances to floor/ceil.
#[test]
fn two_phase_random_instances() {
    let mut meta = StdRng::seed_from_u64(0x2fa2);
    for _ in 0..CASES {
        let seed: u64 = meta.random_range(0..u64::MAX);
        let v = meta.random_range(3usize..9);
        let b = meta.random_range(3usize..16);
        let mut rng = StdRng::seed_from_u64(seed);
        let stripes: Vec<Vec<usize>> = (0..b)
            .map(|_| {
                let k = rng.random_range(2..=v.min(4));
                let mut disks: Vec<usize> = (0..v).collect();
                for i in (1..disks.len()).rev() {
                    let j = rng.random_range(0..=i);
                    disks.swap(i, j);
                }
                disks.truncate(k);
                disks
            })
            .collect();
        let inst = ParityInstance { v, stripes };
        let slots = assign_parity_two_phase(&inst).expect("always solvable");
        let loads = inst.loads();
        let mut counts = vec![0usize; v];
        for (s, &slot) in inst.stripes.iter().zip(&slots) {
            counts[s[slot]] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(c as f64 >= loads[d].floor() - 1e-9);
            assert!(c as f64 <= loads[d].ceil() + 1e-9);
        }
    }
}
