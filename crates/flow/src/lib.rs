//! # pdl-flow
//!
//! Network-flow substrate for the Section 4 parity-distribution method of
//! Schwabe & Sutherland: Dinic maximum flow, maximum flow with per-edge
//! lower bounds (the paper's parity-assignment graphs bound disk→sink
//! edges by `[⌊L(d)⌋, ⌈L(d)⌉]`), and Hopcroft–Karp bipartite matching
//! (used when re-assigning orphaned parity units in Theorem 9).
//!
//! ```
//! use pdl_flow::{FlowNetwork, max_flow_with_lower_bounds, BoundedEdge};
//!
//! let mut g = FlowNetwork::new(3);
//! g.add_edge(0, 1, 4);
//! g.add_edge(1, 2, 2);
//! assert_eq!(g.max_flow(0, 2), 2);
//!
//! let edges = [BoundedEdge { from: 0, to: 1, lower: 1, upper: 4 },
//!              BoundedEdge { from: 1, to: 2, lower: 0, upper: 2 }];
//! let f = max_flow_with_lower_bounds(3, &edges, 0, 2).unwrap();
//! assert_eq!(f.value, 2);
//! ```

#![warn(missing_docs)]

pub mod dinic;
pub mod lower;
pub mod matching;
pub mod two_phase;

pub use dinic::{EdgeId, FlowNetwork};
pub use lower::{max_flow_with_lower_bounds, BoundedEdge, BoundedFlow};
pub use matching::{hopcroft_karp, max_matching_size};
pub use two_phase::{assign_parity_two_phase, ParityInstance};
