//! Maximum flow with per-edge lower bounds.
//!
//! The parity-assignment graph of Section 4 puts bounds `[⌊L(d)⌋, ⌈L(d)⌉]`
//! on the disk→sink edges. We solve the general problem by the standard
//! reduction: route each lower bound unconditionally through a super
//! source/sink, verify feasibility, then maximize residual `s→t` flow.
//! This subsumes the paper's two-phase G′ construction (Theorem 13) and
//! yields the same integral flows.

use crate::dinic::{EdgeId, FlowNetwork};

/// An edge specification with flow bounds `lower ≤ f ≤ upper`.
#[derive(Clone, Copy, Debug)]
pub struct BoundedEdge {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Minimum flow the edge must carry.
    pub lower: i64,
    /// Maximum flow the edge may carry.
    pub upper: i64,
}

/// Result of a bounded max-flow computation.
#[derive(Clone, Debug)]
pub struct BoundedFlow {
    /// Total `s → t` flow value.
    pub value: i64,
    /// Flow on each input edge, in input order (respecting the bounds).
    pub edge_flows: Vec<i64>,
}

/// Computes a maximum `s→t` flow respecting all edge bounds, or `None`
/// if no feasible flow exists.
pub fn max_flow_with_lower_bounds(
    n: usize,
    edges: &[BoundedEdge],
    s: usize,
    t: usize,
) -> Option<BoundedFlow> {
    assert!(s < n && t < n && s != t);
    for e in edges {
        assert!(e.from < n && e.to < n, "edge endpoint out of range");
        assert!(0 <= e.lower && e.lower <= e.upper, "need 0 <= lower <= upper");
    }
    // Transformed network: nodes 0..n plus super-source S=n, super-sink T=n+1.
    let (ss, tt) = (n, n + 1);
    let mut g = FlowNetwork::new(n + 2);
    let mut excess = vec![0i64; n];
    let ids: Vec<EdgeId> = edges
        .iter()
        .map(|e| {
            excess[e.to] += e.lower;
            excess[e.from] -= e.lower;
            g.add_edge(e.from, e.to, e.upper - e.lower)
        })
        .collect();
    // Allow circulation for the s→t flow being maximized.
    g.add_edge(t, s, i64::MAX / 4);
    let mut need = 0i64;
    for (u, &x) in excess.iter().enumerate() {
        if x > 0 {
            g.add_edge(ss, u, x);
            need += x;
        } else if x < 0 {
            g.add_edge(u, tt, -x);
        }
    }
    if g.max_flow(ss, tt) != need {
        return None; // lower bounds are unsatisfiable
    }
    // Maximize the true s→t flow on the residual graph.
    let value_extra = g.max_flow(s, t);
    let mut edge_flows = Vec::with_capacity(edges.len());
    for (e, &id) in edges.iter().zip(&ids) {
        edge_flows.push(e.lower + g.edge_flow(id));
    }
    // Total value = what the t→s circulation edge carried plus the extra.
    // Easier: recompute from edges leaving s.
    let mut value = 0i64;
    for (e, f) in edges.iter().zip(&edge_flows) {
        if e.from == s {
            value += f;
        }
        if e.to == s {
            value -= f;
        }
    }
    let _ = value_extra;
    Some(BoundedFlow { value, edge_flows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn be(from: usize, to: usize, lower: i64, upper: i64) -> BoundedEdge {
        BoundedEdge { from, to, lower, upper }
    }

    #[test]
    fn no_lower_bounds_reduces_to_plain_max_flow() {
        let edges = vec![be(0, 1, 0, 10), be(1, 2, 0, 3)];
        let f = max_flow_with_lower_bounds(3, &edges, 0, 2).unwrap();
        assert_eq!(f.value, 3);
    }

    #[test]
    fn forced_lower_bound_routes_flow() {
        // s→a [2,5], a→t [0,10]: must push at least 2.
        let edges = vec![be(0, 1, 2, 5), be(1, 2, 0, 10)];
        let f = max_flow_with_lower_bounds(3, &edges, 0, 2).unwrap();
        assert_eq!(f.value, 5); // maximization saturates the upper bound
        assert!(f.edge_flows[0] >= 2);
    }

    #[test]
    fn infeasible_lower_bounds_detected() {
        // s→a needs ≥5 but a→t allows ≤2.
        let edges = vec![be(0, 1, 5, 5), be(1, 2, 0, 2)];
        assert!(max_flow_with_lower_bounds(3, &edges, 0, 2).is_none());
    }

    #[test]
    fn bounds_respected_on_all_edges() {
        let edges =
            vec![be(0, 1, 1, 3), be(0, 2, 0, 4), be(1, 3, 1, 2), be(2, 3, 2, 4), be(1, 2, 0, 2)];
        let f = max_flow_with_lower_bounds(4, &edges, 0, 3).unwrap();
        for (e, fl) in edges.iter().zip(&f.edge_flows) {
            assert!(*fl >= e.lower && *fl <= e.upper, "edge {e:?} carries {fl}");
        }
        // conservation at interior nodes
        let mut net = [0i64; 4];
        for (e, fl) in edges.iter().zip(&f.edge_flows) {
            net[e.from] -= fl;
            net[e.to] += fl;
        }
        assert_eq!(net[1], 0);
        assert_eq!(net[2], 0);
        assert_eq!(net[0], -f.value);
        assert_eq!(net[3], f.value);
    }

    #[test]
    fn paper_style_parity_graph() {
        // 4 stripes over 3 disks, stripe→disk unit edges; disk loads
        // L(d) from stripe sizes; source→stripe [1,1] edges modeled as
        // lower bounds (each stripe must pick exactly one parity disk).
        // stripes: {0,1}, {1,2}, {0,2}, {0,1,2} → L = (1/2+1/2+1/3, …)
        let stripes: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]];
        let b = stripes.len();
        let v = 3usize;
        // nodes: 0 = s, 1..=b stripes, b+1..=b+v disks, b+v+1 = t
        let s = 0;
        let t = b + v + 1;
        let mut edges = Vec::new();
        let mut load = vec![0f64; v];
        for (si, stripe) in stripes.iter().enumerate() {
            edges.push(be(s, 1 + si, 1, 1));
            for &d in stripe {
                edges.push(be(1 + si, b + 1 + d, 0, 1));
                load[d] += 1.0 / stripe.len() as f64;
            }
        }
        for (d, &l) in load.iter().enumerate() {
            edges.push(be(b + 1 + d, t, l.floor() as i64, l.ceil() as i64));
        }
        let f = max_flow_with_lower_bounds(t + 1, &edges, s, t).unwrap();
        assert_eq!(f.value, b as i64, "Theorem 13: max flow equals b");
    }

    #[test]
    fn integrality_of_flows() {
        // All inputs integral → all outputs integral (trivially true for
        // i64, but assert edge flows are in-bounds and value consistent).
        let edges = vec![be(0, 1, 0, 7), be(0, 2, 3, 6), be(1, 3, 0, 5), be(2, 3, 0, 9)];
        let f = max_flow_with_lower_bounds(4, &edges, 0, 3).unwrap();
        assert_eq!(f.value, f.edge_flows[2] + f.edge_flows[3]);
    }
}
