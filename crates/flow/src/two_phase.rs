//! The paper's own Theorem 13 procedure for parity-assignment graphs,
//! as an alternative to the generic lower-bound reduction in
//! [`crate::lower`]: first compute an integer max flow in the auxiliary
//! graph `G′` (disk→sink capacities relaxed to `[0, ⌊L(d)⌋]`), which is
//! a feasible flow in `G`; then augment to the full value `b` with the
//! `⌈L(d)⌉` capacities restored.
//!
//! Kept verbatim as an ablation target: benches compare it against the
//! super-source/super-sink reduction (same results, different constant
//! factors).

use crate::dinic::{EdgeId, FlowNetwork};

/// A parity-assignment instance: `b` stripes over `v` disks, stripe `s`
/// crossing the disks in `stripes[s]` (duplicates forbidden).
#[derive(Clone, Debug)]
pub struct ParityInstance {
    /// Number of disks.
    pub v: usize,
    /// Disks crossed by each stripe.
    pub stripes: Vec<Vec<usize>>,
}

impl ParityInstance {
    /// The load `L(d) = Σ_{s ∋ d} 1/k_s` per disk.
    pub fn loads(&self) -> Vec<f64> {
        let mut l = vec![0f64; self.v];
        for stripe in &self.stripes {
            for &d in stripe {
                l[d] += 1.0 / stripe.len() as f64;
            }
        }
        l
    }
}

/// Solves the instance with the paper's two-phase method, returning the
/// chosen parity slot (index into `stripes[s]`) for every stripe.
///
/// Returns `None` only if the instance is malformed (the paper proves a
/// flow of value `b` always exists for valid layouts).
pub fn assign_parity_two_phase(inst: &ParityInstance) -> Option<Vec<usize>> {
    let b = inst.stripes.len();
    let v = inst.v;
    // Nodes: 0 = source, 1..=b stripes, b+1..=b+v disks, b+v+1 = sink.
    let (s, t) = (0usize, b + v + 1);
    let mut g = FlowNetwork::new(t + 1);
    let mut unit_edges: Vec<Vec<EdgeId>> = Vec::with_capacity(b);
    for (si, stripe) in inst.stripes.iter().enumerate() {
        g.add_edge(s, 1 + si, 1);
        let mut ids = Vec::with_capacity(stripe.len());
        for &d in stripe {
            assert!(d < v, "disk index out of range");
            ids.push(g.add_edge(1 + si, 1 + b + d, 1));
        }
        unit_edges.push(ids);
    }
    let loads = inst.loads();
    // Phase 1: G′ with disk→sink capacity ⌊L(d)⌋.
    let mut sink_edges = Vec::with_capacity(v);
    let mut floor_sum = 0i64;
    for (d, &l) in loads.iter().enumerate() {
        let fl = (l + 1e-9).floor() as i64;
        floor_sum += fl;
        sink_edges.push(g.add_edge(1 + b + d, t, fl));
    }
    let phase1 = g.max_flow(s, t);
    if phase1 != floor_sum {
        return None; // cannot happen for valid instances (Theorem 13)
    }
    // Phase 2: raise disk→sink capacities to ⌈L(d)⌉ by adding parallel
    // edges with the residual headroom, then augment to b.
    for (d, &l) in loads.iter().enumerate() {
        let fl = (l + 1e-9).floor() as i64;
        let ce = (l - 1e-9).ceil() as i64;
        if ce > fl {
            g.add_edge(1 + b + d, t, ce - fl);
        }
    }
    let phase2 = g.max_flow(s, t);
    if phase1 + phase2 != b as i64 {
        return None;
    }
    let _ = sink_edges;
    let mut out = Vec::with_capacity(b);
    for ids in &unit_edges {
        let slot = ids.iter().position(|&id| g.edge_flow(id) == 1)?;
        out.push(slot);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(inst: &ParityInstance) {
        let slots = assign_parity_two_phase(inst).expect("Theorem 13 guarantees a solution");
        let loads = inst.loads();
        let mut counts = vec![0usize; inst.v];
        for (s, &slot) in inst.stripes.iter().zip(&slots) {
            counts[s[slot]] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                c as f64 >= loads[d].floor() - 1e-9 && c as f64 <= loads[d].ceil() + 1e-9,
                "disk {d}: {c} vs L={}",
                loads[d]
            );
        }
    }

    #[test]
    fn small_uniform_instance() {
        check(&ParityInstance {
            v: 4,
            stripes: vec![vec![0, 1, 2], vec![0, 1, 3], vec![0, 2, 3], vec![1, 2, 3]],
        });
    }

    #[test]
    fn ragged_instance() {
        check(&ParityInstance {
            v: 5,
            stripes: vec![
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2, 4],
                vec![3, 4],
                vec![0, 1, 2, 3, 4],
            ],
        });
    }

    #[test]
    fn matches_generic_method_balance() {
        // Both methods must achieve the same floor/ceil guarantee (the
        // specific assignment may differ).
        let inst = ParityInstance {
            v: 6,
            stripes: (0..12).map(|i| vec![i % 6, (i + 1) % 6, (i + 3) % 6]).collect(),
        };
        check(&inst);
    }

    #[test]
    fn single_stripe() {
        let inst = ParityInstance { v: 3, stripes: vec![vec![0, 1, 2]] };
        let slots = assign_parity_two_phase(&inst).unwrap();
        assert_eq!(slots.len(), 1);
        assert!(slots[0] < 3);
    }

    #[test]
    fn perfect_balance_when_v_divides_b() {
        // 6 stripes over 3 disks, k=2: L(d) = 4·(1/2)=2 each… construct
        // a 2-regular instance: each disk in 4 stripes of size 2.
        let inst = ParityInstance {
            v: 3,
            stripes: vec![vec![0, 1], vec![1, 2], vec![2, 0], vec![0, 1], vec![1, 2], vec![2, 0]],
        };
        let slots = assign_parity_two_phase(&inst).unwrap();
        let mut counts = [0usize; 3];
        for (s, &slot) in inst.stripes.iter().zip(&slots) {
            counts[s[slot]] += 1;
        }
        assert_eq!(counts, [2, 2, 2], "Corollary 16: perfect when v | b");
    }
}
