//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! This is the workhorse behind the paper's Section 4 parity-assignment
//! method. Dinic runs in `O(V²E)` generally and `O(E·√V)` on the unit-
//! capacity bipartite graphs that parity assignment produces — far better
//! than the generic Ford–Fulkerson the paper sketches, with identical
//! integral-flow guarantees.

use std::collections::VecDeque;

/// Identifier of an edge returned by [`FlowNetwork::add_edge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Clone, Debug)]
struct Edge {
    to: usize,
    cap: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network with integer capacities.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    /// `(node, slot)` for each public EdgeId.
    edges: Vec<(usize, usize)>,
    /// Original capacity per public edge (for flow reporting).
    caps: Vec<i64>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (0-based).
    pub fn new(n: usize) -> Self {
        FlowNetwork { graph: vec![Vec::new(); n], edges: Vec::new(), caps: Vec::new() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeId {
        assert!(from < self.len() && to < self.len(), "edge endpoint out of range");
        assert!(cap >= 0, "capacity must be nonnegative");
        let a = self.graph[from].len();
        let b = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(Edge { to, cap, rev: b });
        self.graph[to].push(Edge { to: from, cap: 0, rev: a });
        self.edges.push((from, a));
        self.caps.push(cap);
        EdgeId(self.edges.len() - 1)
    }

    /// Flow currently routed through a public edge.
    pub fn edge_flow(&self, id: EdgeId) -> i64 {
        let (node, slot) = self.edges[id.0];
        self.caps[id.0] - self.graph[node][slot].cap
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.len()];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for e in &self.graph[u] {
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    q.push_back(e.to);
                }
            }
        }
        (level[t] >= 0).then_some(level)
    }

    fn dfs_augment(&mut self, u: usize, t: usize, f: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if u == t {
            return f;
        }
        while it[u] < self.graph[u].len() {
            let (to, cap, rev) = {
                let e = &self.graph[u][it[u]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let d = self.dfs_augment(to, t, f.min(cap), level, it);
                if d > 0 {
                    self.graph[u][it[u]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Computes the maximum flow from `s` to `t`; residual state persists,
    /// so flows are cumulative across calls and [`edge_flow`](Self::edge_flow)
    /// reports the final routing.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert!(s < self.len() && t < self.len());
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0i64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.len()];
            loop {
                let f = self.dfs_augment(s, t, i64::MAX, &level, &mut it);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 5);
        assert_eq!(g.max_flow(0, 1), 5);
        assert_eq!(g.edge_flow(e), 5);
    }

    #[test]
    fn series_bottleneck() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 3);
        assert_eq!(g.max_flow(0, 2), 3);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.6: max flow 23.
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        assert_eq!(g.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(g.max_flow(0, 3), 0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 1, 3);
        assert_eq!(g.max_flow(0, 1), 5);
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 0, 7);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 2);
        assert_eq!(g.max_flow(0, 2), 2);
    }

    #[test]
    fn flow_conservation_random() {
        // Random graphs: check conservation at interior nodes.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = rng.random_range(4..12);
            let mut g = FlowNetwork::new(n);
            let mut ids = Vec::new();
            for _ in 0..rng.random_range(5..30) {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v {
                    ids.push((u, v, g.add_edge(u, v, rng.random_range(0..10))));
                }
            }
            let total = g.max_flow(0, n - 1);
            let mut net = vec![0i64; n];
            for &(u, v, id) in &ids {
                let f = g.edge_flow(id);
                assert!(f >= 0);
                net[u] -= f;
                net[v] += f;
            }
            assert_eq!(net[0], -total);
            assert_eq!(net[n - 1], total);
            for x in net.iter().take(n - 1).skip(1) {
                assert_eq!(*x, 0, "conservation violated");
            }
        }
    }

    #[test]
    fn bipartite_unit_matching_size() {
        // 3x3 complete bipartite with unit capacities: flow = 3.
        let mut g = FlowNetwork::new(8);
        let (s, t) = (6, 7);
        for l in 0..3 {
            g.add_edge(s, l, 1);
            g.add_edge(3 + l, t, 1);
            for r in 0..3 {
                g.add_edge(l, 3 + r, 1);
            }
        }
        assert_eq!(g.max_flow(s, t), 3);
    }
}
