//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by the Theorem 9 construction: after removing `i` disks from a
//! ring-based layout, the `i(i−1)` orphaned parity units must be matched
//! to distinct remaining disks, each usable at most once.

use std::collections::VecDeque;

/// Maximum matching on a bipartite graph given as adjacency lists from
/// the left side (`adj[l]` = right vertices reachable from left vertex
/// `l`). Returns `match_left[l] = Some(r)` assignments.
pub fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    assert_eq!(adj.len(), n_left);
    for nbrs in adj {
        for &r in nbrs {
            assert!(r < n_right, "right vertex out of range");
        }
    }
    const NIL: usize = usize::MAX;
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0u32; n_left];

    let bfs = |match_l: &[usize], match_r: &[usize], dist: &mut [u32]| -> bool {
        let mut q = VecDeque::new();
        for l in 0..n_left {
            if match_l[l] == NIL {
                dist[l] = 0;
                q.push_back(l);
            } else {
                dist[l] = u32::MAX;
            }
        }
        let mut found = false;
        while let Some(l) = q.pop_front() {
            for &r in &adj[l] {
                let ml = match_r[r];
                if ml == NIL {
                    found = true;
                } else if dist[ml] == u32::MAX {
                    dist[ml] = dist[l] + 1;
                    q.push_back(ml);
                }
            }
        }
        found
    };

    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        match_l: &mut [usize],
        match_r: &mut [usize],
        dist: &mut [u32],
    ) -> bool {
        const NIL: usize = usize::MAX;
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let ml = match_r[r];
            if ml == NIL || (dist[ml] == dist[l] + 1 && dfs(ml, adj, match_l, match_r, dist)) {
                match_l[l] = r;
                match_r[r] = l;
                return true;
            }
        }
        dist[l] = u32::MAX;
        false
    }

    while bfs(&match_l, &match_r, &mut dist) {
        for l in 0..n_left {
            if match_l[l] == NIL {
                dfs(l, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }
    match_l.iter().map(|&r| (r != NIL).then_some(r)).collect()
}

/// Size of a maximum matching.
pub fn max_matching_size(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> usize {
    hopcroft_karp(n_left, n_right, adj).iter().flatten().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(adj: &[Vec<usize>], m: &[Option<usize>]) {
        let mut used = std::collections::HashSet::new();
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = r {
                assert!(adj[l].contains(r), "matched along a non-edge");
                assert!(used.insert(*r), "right vertex matched twice");
            }
        }
    }

    #[test]
    fn perfect_matching_on_complete_graph() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let m = hopcroft_karp(4, 4, &adj);
        check_valid(&adj, &m);
        assert_eq!(m.iter().flatten().count(), 4);
    }

    #[test]
    fn needs_augmenting_paths() {
        // Greedy left-to-right would match 0-0 and strand vertex 1.
        let adj = vec![vec![0, 1], vec![0]];
        let m = hopcroft_karp(2, 2, &adj);
        check_valid(&adj, &m);
        assert_eq!(m.iter().flatten().count(), 2);
        assert_eq!(m[1], Some(0));
    }

    #[test]
    fn hall_violation_limits_matching() {
        // Three left vertices all adjacent only to right vertex 0.
        let adj = vec![vec![0], vec![0], vec![0]];
        assert_eq!(max_matching_size(3, 1, &adj), 1);
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<usize>> = vec![vec![], vec![]];
        assert_eq!(max_matching_size(2, 3, &adj), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn brute(nl: usize, nr: usize, adj: &[Vec<usize>]) -> usize {
            // Try all subsets of right assignments via DFS with memo on
            // small sizes.
            fn go(l: usize, adj: &[Vec<usize>], used: &mut Vec<bool>) -> usize {
                if l == adj.len() {
                    return 0;
                }
                let mut best = go(l + 1, adj, used); // skip l
                for &r in &adj[l] {
                    if !used[r] {
                        used[r] = true;
                        best = best.max(1 + go(l + 1, adj, used));
                        used[r] = false;
                    }
                }
                best
            }
            let _ = nl;
            go(0, adj, &mut vec![false; nr])
        }

        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let nl = rng.random_range(1..7);
            let nr = rng.random_range(1..7);
            let adj: Vec<Vec<usize>> =
                (0..nl).map(|_| (0..nr).filter(|_| rng.random_bool(0.4)).collect()).collect();
            let fast = max_matching_size(nl, nr, &adj);
            let slow = brute(nl, nr, &adj);
            assert_eq!(fast, slow, "adj={adj:?}");
            check_valid(&adj, &hopcroft_karp(nl, nr, &adj));
        }
    }
}
