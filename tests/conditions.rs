//! The four Holland–Gibson conditions (Section 1), checked across every
//! construction family the library offers.

use parity_decluster::core::{
    holland_gibson_layout, minimal_balanced_layout, raid5_layout, random_layout,
    single_copy_layout, stairway_layout, verify_mapper, AddressMapper, Layout, QualityReport,
    RingLayout, StripePartition,
};
use parity_decluster::design::{complete_design, theorem4_design, theorem6_design, RingDesign};

fn all_layouts() -> Vec<(String, Layout)> {
    vec![
        ("raid5 v=6".into(), raid5_layout(6, 12)),
        ("hg complete v=5,k=3".into(), holland_gibson_layout(&complete_design(5, 3, 1000))),
        ("hg thm4 v=13,k=4".into(), holland_gibson_layout(&theorem4_design(13, 4).design)),
        ("ring v=9,k=4".into(), RingLayout::for_v_k(9, 4).layout().clone()),
        ("ring v=15,k=3".into(), RingLayout::for_v_k(15, 3).layout().clone()),
        ("thm8 v=9→8,k=4".into(), RingLayout::for_v_k(9, 4).remove_disk(0)),
        ("thm9 v=13→11,k=5".into(), RingLayout::for_v_k(13, 5).remove_disks(&[0, 6]).unwrap()),
        ("stairway 8→10,k=3".into(), stairway_layout(&RingDesign::for_v_k(8, 3), 10).unwrap()),
        ("stairway 9→13,k=4".into(), stairway_layout(&RingDesign::for_v_k(9, 4), 13).unwrap()),
        (
            "lcm-min thm6 v=9,k=3".into(),
            minimal_balanced_layout(&theorem6_design(9, 3).design).unwrap(),
        ),
        (
            "flow1 thm6 v=16,k=4".into(),
            StripePartition::from_layout(&single_copy_layout(&theorem6_design(16, 4).design, 0))
                .assign_parity()
                .unwrap(),
        ),
        ("random v=10,k=4".into(), random_layout(10, 4, 12, 42).unwrap()),
    ]
}

/// Condition 1: every layout can reconstruct any single failed disk —
/// each stripe holds at most one unit per disk (enforced by the Layout
/// validator, re-checked here) and every lost unit has surviving peers.
#[test]
fn condition1_reconstructability() {
    for (name, l) in all_layouts() {
        for stripe in l.stripes() {
            let mut disks: Vec<u32> = stripe.units().iter().map(|u| u.disk).collect();
            disks.sort_unstable();
            let n = disks.len();
            disks.dedup();
            assert_eq!(disks.len(), n, "{name}: stripe reuses a disk");
        }
        // losing any disk leaves at least one unit per crossing stripe
        for failed in 0..l.v() {
            for stripe in l.stripes().iter().filter(|s| s.crosses(failed)) {
                assert!(
                    stripe.len() >= 2 || !stripe.crosses(failed),
                    "{name}: stripe unrecoverable after disk {failed}"
                );
            }
        }
    }
}

/// Condition 2: parity spread — Δ ≤ 1 for everything flow-balanced or
/// combinatorial (random placement is re-balanced by the flow too).
#[test]
fn condition2_parity_distribution() {
    for (name, l) in all_layouts() {
        let q = QualityReport::measure(&l);
        assert!(q.parity_nearly_balanced(), "{name}: parity counts {:?}", q.parity_units);
    }
}

/// Condition 3: reconstruction workload stays within sane bounds and is
/// exactly balanced for the BIBD-based families.
#[test]
fn condition3_reconstruction_workload() {
    for (name, l) in all_layouts() {
        let q = QualityReport::measure(&l);
        assert!(q.reconstruction_workload.1 <= 1.0 + 1e-9, "{name}");
        if name.starts_with("ring") || name.starts_with("hg") || name.starts_with("raid5") {
            assert!(q.reconstruction_balanced(), "{name}: {:?}", q.reconstruction_workload);
        }
    }
}

/// Condition 4: the mapping is a table lookup + O(1) arithmetic and the
/// table is small; round-trips for every construction.
#[test]
fn condition4_mapping_efficiency() {
    for (name, l) in all_layouts() {
        assert!(verify_mapper(&l), "{name}: mapper round-trip failed");
        let m = AddressMapper::new(&l);
        assert_eq!(m.table_entries(), l.data_unit_count(), "{name}");
        // table entries never exceed v × size (one per unit)
        assert!(m.table_entries() <= l.v() * l.size(), "{name}");
    }
}

/// Cross-cutting: total parity equals the stripe count everywhere.
#[test]
fn parity_totals() {
    for (name, l) in all_layouts() {
        let counts = parity_decluster::core::parity_counts(&l);
        assert_eq!(counts.iter().sum::<usize>(), l.b(), "{name}");
    }
}
