//! Property-based tests (proptest) on the core invariants: field and
//! ring axioms, design balance, layout coverage, flow-based parity
//! bounds, and simulator conservation laws.

use parity_decluster::algebra::{FiniteField, FiniteRing, Ring};
use parity_decluster::core::{
    parity_counts, random_layout, QualityReport, RingLayout, StripePartition, StripeUnit,
};
use parity_decluster::design::RingDesign;
use proptest::prelude::*;

const PRIME_POWERS: &[u64] = &[4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32];

fn arb_field() -> impl Strategy<Value = FiniteField> {
    prop::sample::select(PRIME_POWERS).prop_map(FiniteField::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Field axioms hold for random element triples in random fields.
    #[test]
    fn field_axioms(f in arb_field(), seed in any::<u64>()) {
        let q = f.order();
        let a = (seed % q as u64) as usize;
        let b = (seed / 7 % q as u64) as usize;
        let c = (seed / 49 % q as u64) as usize;
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        prop_assert_eq!(f.add(a, f.neg(a)), 0);
        if a != 0 {
            let inv = f.inv(a).unwrap();
            prop_assert_eq!(f.mul(a, inv), 1);
        }
    }

    /// Fermat in GF(q): a^q = a for every element.
    #[test]
    fn frobenius_fixes_field(f in arb_field(), seed in any::<u64>()) {
        let a = (seed % f.order() as u64) as usize;
        prop_assert_eq!(f.pow(a, f.order() as u64), a);
    }

    /// Ring designs over random prime powers are BIBDs with the
    /// Theorem 1 parameters.
    #[test]
    fn ring_design_is_bibd(q in prop::sample::select(PRIME_POWERS), k_off in 0usize..4) {
        let v = q as usize;
        let k = (2 + k_off).min(v);
        let d = RingDesign::for_v_k(v, k);
        let p = d.to_block_design().verify_bibd().unwrap();
        prop_assert_eq!(p.b, v * (v - 1));
        prop_assert_eq!(p.r, k * (v - 1));
        prop_assert_eq!(p.lambda, k * (k - 1));
    }

    /// Ring layouts are valid and perfectly balanced for all (v, k).
    #[test]
    fn ring_layout_invariants(q in prop::sample::select(PRIME_POWERS), k_off in 0usize..4) {
        let v = q as usize;
        let k = (2 + k_off).min(v);
        let rl = RingLayout::for_v_k(v, k);
        let report = QualityReport::measure(rl.layout());
        prop_assert!(report.parity_balanced());
        prop_assert!(report.reconstruction_balanced());
        prop_assert_eq!(rl.layout().size(), k * (v - 1));
    }

    /// Theorem 8: removing any disk keeps parity perfectly balanced.
    #[test]
    fn disk_removal_balanced(q in prop::sample::select(PRIME_POWERS), seed in any::<u64>()) {
        let v = q as usize;
        if v < 4 { return Ok(()); }
        let k = 3.min(v - 1).max(2);
        let rl = RingLayout::for_v_k(v, k);
        let removed = (seed % v as u64) as usize;
        let l = rl.remove_disk(removed);
        let counts = parity_counts(&l);
        prop_assert!(counts.iter().all(|&c| c == v), "counts {:?}", counts);
    }

    /// Flow parity assignment achieves the floor/ceil bound on random
    /// balanced-coverage layouts (the Theorem 14 guarantee on inputs no
    /// combinatorial design covers).
    #[test]
    fn flow_assignment_floor_ceil(seed in any::<u64>(), v in 5usize..12, k in 2usize..5) {
        prop_assume!(k < v);
        // rows such that k | rows·v
        let rows = k * 3;
        let layout = random_layout(v, k, rows, seed).unwrap();
        let part = StripePartition::from_layout(&layout);
        let loads = part.loads(&vec![1; part.stripes().len()]);
        let counts = parity_counts(&layout);
        for (d, &c) in counts.iter().enumerate() {
            prop_assert!(c as f64 >= loads[d].floor() - 1e-9);
            prop_assert!(c as f64 <= loads[d].ceil() + 1e-9);
        }
    }

    /// Random layouts sum their parity to exactly b and cover the array.
    #[test]
    fn random_layout_valid(seed in any::<u64>(), v in 4usize..10) {
        let k = 3.min(v);
        let rows = k * 2;
        let layout = random_layout(v, k, rows, seed).unwrap();
        prop_assert_eq!(layout.b(), rows * v / k);
        prop_assert_eq!(parity_counts(&layout).iter().sum::<usize>(), layout.b());
        // every stripe has at most one unit per disk (validated at build,
        // but assert the public invariant anyway)
        for s in layout.stripes() {
            let mut disks: Vec<u32> = s.units().iter().map(|u| u.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            prop_assert_eq!(disks.len(), s.len());
        }
    }

    /// Lemma 3 generator sets are valid in random composite rings.
    #[test]
    fn lemma3_generators_valid(v in 6u64..200) {
        let m = parity_decluster::algebra::nt::min_prime_power_factor(v) as usize;
        let k = m.min(5).max(2);
        let ring = FiniteRing::lemma3_ring(v);
        let gens = ring.lemma3_generators(k);
        prop_assert!(ring.is_generator_set(&gens));
        prop_assert_eq!(gens[0], 0);
    }

    /// Stairway parameters, when they exist, always satisfy (8) and (9).
    #[test]
    fn stairway_params_satisfy_conditions(q in 4usize..60, dv in 1usize..12) {
        let v = q + dv;
        if let Some(p) = parity_decluster::core::StairwayParams::solve(q, v) {
            prop_assert_eq!(p.c * p.d + p.w, v);       // condition (8)
            prop_assert!(p.w < p.c);                    // condition (9)
            prop_assert_eq!(p.d, v - q);
            prop_assert!(p.c >= 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator conserves IOs: every generated read/write maps to
    /// at least one disk IO, and rebuild reads match the layout exactly.
    #[test]
    fn simulator_conservation(seed in any::<u64>()) {
        use parity_decluster::sim::{simulate_rebuild, rebuild_reads_match_layout, RebuildTarget};
        let rl = RingLayout::for_v_k(7, 3);
        let failed = (seed % 7) as usize;
        let res = simulate_rebuild(rl.layout(), failed, RebuildTarget::ReadOnly, seed);
        prop_assert!(res.rebuild_finished_at.is_some());
        prop_assert!(rebuild_reads_match_layout(rl.layout(), failed, &res));
    }

    /// Layout validation rejects any single-unit corruption.
    #[test]
    fn validation_catches_duplicates(v in 3usize..7) {
        use parity_decluster::core::{Layout, Stripe};
        let k = 2;
        // two stripes claiming the same unit must be rejected
        let s1 = Stripe::new(vec![StripeUnit::new(0, 0), StripeUnit::new(1, 0)], 0);
        let s2 = Stripe::new(vec![StripeUnit::new(0, 0), StripeUnit::new(2, 0)], 0);
        let _ = k;
        prop_assert!(Layout::from_stripes(v, 1, vec![s1, s2]).is_err());
    }
}
