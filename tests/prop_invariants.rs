//! Property-style tests on the core invariants: field and ring axioms,
//! design balance, layout coverage, flow-based parity bounds, and
//! simulator conservation laws. Uses seeded random sampling (the
//! offline environment has no `proptest`), with enough cases per
//! property to match the original proptest coverage.

use parity_decluster::algebra::{FiniteField, FiniteRing, Ring};
use parity_decluster::core::{
    parity_counts, random_layout, QualityReport, RingLayout, StripePartition, StripeUnit,
};
use parity_decluster::design::RingDesign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRIME_POWERS: &[u64] = &[4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32];

const CASES: usize = 64;

fn random_field(rng: &mut StdRng) -> FiniteField {
    FiniteField::new(PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())])
}

/// Field axioms hold for random element triples in random fields.
#[test]
fn field_axioms() {
    let mut rng = StdRng::seed_from_u64(0xf1e1d);
    for _ in 0..CASES {
        let f = random_field(&mut rng);
        let q = f.order();
        let seed: u64 = rng.random_range(0..u64::MAX);
        let a = (seed % q as u64) as usize;
        let b = (seed / 7 % q as u64) as usize;
        let c = (seed / 49 % q as u64) as usize;
        assert_eq!(f.add(a, b), f.add(b, a));
        assert_eq!(f.mul(a, b), f.mul(b, a));
        assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        assert_eq!(f.add(a, f.neg(a)), 0);
        if a != 0 {
            let inv = f.inv(a).unwrap();
            assert_eq!(f.mul(a, inv), 1);
        }
    }
}

/// Fermat in GF(q): a^q = a for every element.
#[test]
fn frobenius_fixes_field() {
    let mut rng = StdRng::seed_from_u64(0xf40b);
    for _ in 0..CASES {
        let f = random_field(&mut rng);
        let a = rng.random_range(0..f.order());
        assert_eq!(f.pow(a, f.order() as u64), a);
    }
}

/// Ring designs over random prime powers are BIBDs with the Theorem 1
/// parameters.
#[test]
fn ring_design_is_bibd() {
    let mut rng = StdRng::seed_from_u64(0xb1bd);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())] as usize;
        let k = (2 + rng.random_range(0usize..4)).min(v);
        let d = RingDesign::for_v_k(v, k);
        let p = d.to_block_design().verify_bibd().unwrap();
        assert_eq!(p.b, v * (v - 1));
        assert_eq!(p.r, k * (v - 1));
        assert_eq!(p.lambda, k * (k - 1));
    }
}

/// Ring layouts are valid and perfectly balanced for all (v, k).
#[test]
fn ring_layout_invariants() {
    let mut rng = StdRng::seed_from_u64(0x41a6);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())] as usize;
        let k = (2 + rng.random_range(0usize..4)).min(v);
        let rl = RingLayout::for_v_k(v, k);
        let report = QualityReport::measure(rl.layout());
        assert!(report.parity_balanced());
        assert!(report.reconstruction_balanced());
        assert_eq!(rl.layout().size(), k * (v - 1));
    }
}

/// Theorem 8: removing any disk keeps parity perfectly balanced.
#[test]
fn disk_removal_balanced() {
    let mut rng = StdRng::seed_from_u64(0xd15c);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())] as usize;
        if v < 4 {
            continue;
        }
        let k = 3.min(v - 1).max(2);
        let rl = RingLayout::for_v_k(v, k);
        let removed = rng.random_range(0..v);
        let l = rl.remove_disk(removed);
        let counts = parity_counts(&l);
        assert!(counts.iter().all(|&c| c == v), "counts {counts:?}");
    }
}

/// Flow parity assignment achieves the floor/ceil bound on random
/// balanced-coverage layouts (the Theorem 14 guarantee on inputs no
/// combinatorial design covers).
#[test]
fn flow_assignment_floor_ceil() {
    let mut rng = StdRng::seed_from_u64(0xf10f);
    for _ in 0..CASES {
        let v = rng.random_range(5usize..12);
        let k = rng.random_range(2usize..5);
        if k >= v {
            continue;
        }
        let seed: u64 = rng.random_range(0..u64::MAX);
        // rows such that k | rows·v
        let rows = k * 3;
        let layout = random_layout(v, k, rows, seed).unwrap();
        let part = StripePartition::from_layout(&layout);
        let loads = part.loads(&vec![1; part.stripes().len()]);
        let counts = parity_counts(&layout);
        for (d, &c) in counts.iter().enumerate() {
            assert!(c as f64 >= loads[d].floor() - 1e-9);
            assert!(c as f64 <= loads[d].ceil() + 1e-9);
        }
    }
}

/// Random layouts sum their parity to exactly b and cover the array.
#[test]
fn random_layout_valid() {
    let mut rng = StdRng::seed_from_u64(0x4a9d);
    for _ in 0..CASES {
        let v = rng.random_range(4usize..10);
        let seed: u64 = rng.random_range(0..u64::MAX);
        let k = 3.min(v);
        let rows = k * 2;
        let layout = random_layout(v, k, rows, seed).unwrap();
        assert_eq!(layout.b(), rows * v / k);
        assert_eq!(parity_counts(&layout).iter().sum::<usize>(), layout.b());
        // every stripe has at most one unit per disk (validated at build,
        // but assert the public invariant anyway)
        for s in layout.stripes() {
            let mut disks: Vec<u32> = s.units().iter().map(|u| u.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), s.len());
        }
    }
}

/// Lemma 3 generator sets are valid in random composite rings.
#[test]
fn lemma3_generators_valid() {
    let mut rng = StdRng::seed_from_u64(0x13a3);
    for _ in 0..CASES {
        let v = rng.random_range(6u64..200);
        let m = parity_decluster::algebra::nt::min_prime_power_factor(v) as usize;
        let k = m.clamp(2, 5);
        let ring = FiniteRing::lemma3_ring(v);
        let gens = ring.lemma3_generators(k);
        assert!(ring.is_generator_set(&gens));
        assert_eq!(gens[0], 0);
    }
}

/// Stairway parameters, when they exist, always satisfy (8) and (9).
#[test]
fn stairway_params_satisfy_conditions() {
    let mut rng = StdRng::seed_from_u64(0x57a1);
    for _ in 0..CASES {
        let q = rng.random_range(4usize..60);
        let v = q + rng.random_range(1usize..12);
        if let Some(p) = parity_decluster::core::StairwayParams::solve(q, v) {
            assert_eq!(p.c * p.d + p.w, v); // condition (8)
            assert!(p.w < p.c); // condition (9)
            assert_eq!(p.d, v - q);
            assert!(p.c >= 2);
        }
    }
}

/// The simulator conserves IOs: every generated read/write maps to at
/// least one disk IO, and rebuild reads match the layout exactly.
#[test]
fn simulator_conservation() {
    use parity_decluster::sim::{rebuild_reads_match_layout, simulate_rebuild, RebuildTarget};
    let mut rng = StdRng::seed_from_u64(0x51c0);
    for _ in 0..16 {
        let seed: u64 = rng.random_range(0..u64::MAX);
        let rl = RingLayout::for_v_k(7, 3);
        let failed = (seed % 7) as usize;
        let res = simulate_rebuild(rl.layout(), failed, RebuildTarget::ReadOnly, seed);
        assert!(res.rebuild_finished_at.is_some());
        assert!(rebuild_reads_match_layout(rl.layout(), failed, &res));
    }
}

/// Layout validation rejects any single-unit corruption.
#[test]
fn validation_catches_duplicates() {
    use parity_decluster::core::{Layout, Stripe};
    for v in 3usize..7 {
        // two stripes claiming the same unit must be rejected
        let s1 = Stripe::new(vec![StripeUnit::new(0, 0), StripeUnit::new(1, 0)], 0);
        let s2 = Stripe::new(vec![StripeUnit::new(0, 0), StripeUnit::new(2, 0)], 0);
        assert!(Layout::from_stripes(v, 1, vec![s1, s2]).is_err());
    }
}
