//! End-to-end integration: algebra → design → layout → flow → simulator.
//! Each test exercises the full pipeline the way a storage system would.

use parity_decluster::core::{
    parity_counts, raid5_layout, verify_mapper, AddressMapper, QualityReport, RingLayout,
    SparedLayout, StripePartition,
};
use parity_decluster::design::{theorem5_design, theorem6_design, RingDesign};
use parity_decluster::sim::{
    rebuild_reads_match_layout, simulate, simulate_rebuild, RebuildTarget, SimConfig,
    StopCondition, Workload,
};

/// GF(q) → ring design → ring layout → flow re-balance → simulate rebuild.
#[test]
fn full_pipeline_prime_power() {
    for (v, k) in [(9usize, 4usize), (13, 4), (16, 5)] {
        let rl = RingLayout::for_v_k(v, k);
        let layout = rl.layout();

        // metrics agree with theory
        let q = QualityReport::measure(layout);
        assert!(q.parity_balanced());
        assert!((q.reconstruction_workload.1 - (k as f64 - 1.0) / (v as f64 - 1.0)).abs() < 1e-12);

        // flow re-assignment preserves perfection
        let rebalanced = StripePartition::from_layout(layout).assign_parity().unwrap();
        let counts = parity_counts(&rebalanced);
        assert!(counts.iter().all(|&c| c == counts[0]), "v={v} k={k}");

        // address mapping round-trips
        assert!(verify_mapper(layout));

        // simulated rebuild touches exactly the predicted units
        for failed in [0, v / 2] {
            let res = simulate_rebuild(layout, failed, RebuildTarget::ReadOnly, 99);
            assert!(rebuild_reads_match_layout(layout, failed, &res), "v={v} k={k} f={failed}");
        }
    }
}

/// Composite v via the Lemma 3 product ring, end to end.
#[test]
fn full_pipeline_composite_v() {
    // v = 21 = 3·7 → M(v) = 3.
    let rl = RingLayout::for_v_k(21, 3);
    let q = QualityReport::measure(rl.layout());
    assert!(q.parity_balanced() && q.reconstruction_balanced());
    let res = simulate_rebuild(rl.layout(), 10, RebuildTarget::ReadOnly, 5);
    assert!(rebuild_reads_match_layout(rl.layout(), 10, &res));
}

/// The simulator's measured per-disk rebuild reads equal the analytic
/// reconstruction workload matrix row, for every failed disk.
#[test]
#[allow(clippy::needless_range_loop)]
fn simulator_matches_analytic_workloads() {
    let rl = RingLayout::for_v_k(8, 3);
    let layout = rl.layout();
    let workloads = parity_decluster::core::reconstruction_workloads(layout);
    for failed in 0..8 {
        let res = simulate_rebuild(layout, failed, RebuildTarget::ReadOnly, failed as u64);
        for d in 0..8 {
            if d == failed {
                assert_eq!(res.rebuild_reads[d], 0);
            } else {
                let measured = res.rebuild_reads[d] as f64 / layout.size() as f64;
                assert!((measured - workloads[failed][d]).abs() < 1e-12, "failed={failed} d={d}");
            }
        }
    }
}

/// Theorem 6 design → single-copy layout → flow parity → degraded sim.
#[test]
fn lambda_one_design_pipeline() {
    let c = theorem6_design(16, 4);
    let single = parity_decluster::core::single_copy_layout(&c.design, 0);
    let layout = StripePartition::from_layout(&single).assign_parity().unwrap();
    assert_eq!(layout.size(), 5, "r = (v-1)/(k-1) = 5 units per disk");
    let q = QualityReport::measure(&layout);
    assert!(q.parity_nearly_balanced());
    // degraded traffic avoids the failed disk entirely
    let cfg = SimConfig {
        seed: 3,
        failed_disk: Some(7),
        workload: Workload { arrivals_per_sec: 200.0, ..Default::default() },
        stop: StopCondition::Duration(3_000_000),
        ..Default::default()
    };
    let res = simulate(&layout, cfg);
    assert_eq!(res.fg_reads[7] + res.fg_writes[7], 0);
    assert!(res.completed > 100);
}

/// Distributed sparing beats the dedicated spare on write bottleneck.
#[test]
fn distributed_sparing_spreads_rebuild_writes() {
    let rl = RingLayout::for_v_k(13, 4);
    let spared = SparedLayout::new(rl.layout().clone()).unwrap();
    let failed = 6;
    let plan = spared.rebuild_plan(failed);
    let mut targets: Vec<Option<(u32, u32)>> = vec![None; spared.layout().b()];
    for (si, u) in &plan.targets {
        targets[*si] = Some((u.disk, u.offset));
    }
    let dist = simulate_rebuild(spared.layout(), failed, RebuildTarget::Distributed(targets), 8);
    let ded = simulate_rebuild(spared.layout(), failed, RebuildTarget::DedicatedSpare, 8);
    // dedicated spare: all writes on one disk; distributed: spread out
    let ded_max = *ded.rebuild_writes.iter().max().unwrap();
    let dist_max = *dist.rebuild_writes.iter().max().unwrap();
    assert!(dist_max < ded_max, "distributed {dist_max} vs dedicated {ded_max}");
    assert!(dist.rebuild_finished_at.unwrap() <= ded.rebuild_finished_at.unwrap());
}

/// RAID5 and declustered layouts agree on totals but not distribution.
#[test]
fn raid5_vs_declustered_accounting() {
    let v = 9;
    let rl = RingLayout::for_v_k(v, 3);
    let size = rl.layout().size();
    let raid5 = raid5_layout(v, size);
    let a = simulate_rebuild(rl.layout(), 0, RebuildTarget::ReadOnly, 1);
    let b = simulate_rebuild(&raid5, 0, RebuildTarget::ReadOnly, 1);
    // both reconstruct `size` units, but RAID5 reads (v-1)/(k-1) more
    let ra: u64 = a.rebuild_reads.iter().sum();
    let rb: u64 = b.rebuild_reads.iter().sum();
    assert_eq!(ra, (3 - 1) * size as u64);
    assert_eq!(rb, (v as u64 - 1) * size as u64);
}

/// Mapper addresses survive a stairway transformation round-trip.
#[test]
fn stairway_layout_is_fully_functional() {
    let design = RingDesign::for_v_k(13, 4);
    let layout = parity_decluster::core::stairway_layout(&design, 16).unwrap();
    assert!(verify_mapper(&layout));
    let m = AddressMapper::new(&layout);
    assert_eq!(m.data_units_per_copy(), layout.data_unit_count());
    let res = simulate_rebuild(&layout, 15, RebuildTarget::ReadOnly, 12);
    assert!(rebuild_reads_match_layout(&layout, 15, &res));
}

/// Theorem 5 designs slot into the lcm-minimal balanced pipeline.
#[test]
fn lcm_minimal_pipeline() {
    let c = theorem5_design(13, 4); // b = 39, 13 | 39
    let layout = parity_decluster::core::minimal_balanced_layout(&c.design).unwrap();
    assert_eq!(layout.size(), c.params.r);
    let q = QualityReport::measure(&layout);
    assert!(q.parity_balanced());
    assert!(verify_mapper(&layout));
}
