//! Broad parameter sweeps re-verifying every theorem's closed form —
//! the integration-level counterpart of the per-module unit tests.

use parity_decluster::algebra::nt::{gcd, min_prime_power_factor, prime_powers_in};
use parity_decluster::core::{
    copies_for_perfect_parity, stairway_layout, QualityReport, RingLayout, StairwayParams,
};
use parity_decluster::design::{
    bibd_min_blocks, theorem4_design, theorem5_design, theorem6_design, RingDesign,
};

#[test]
fn theorem1_sweep() {
    for q in prime_powers_in(4, 32) {
        let v = q as usize;
        for k in [2usize, 3, 5, 7] {
            if k > v {
                continue;
            }
            let d = RingDesign::for_v_k(v, k);
            let p = d.to_block_design().verify_bibd().unwrap();
            assert_eq!((p.b, p.r, p.lambda), (v * (v - 1), k * (v - 1), k * (k - 1)));
        }
    }
}

#[test]
fn theorems_4_5_sweep() {
    for q in prime_powers_in(5, 32) {
        let v = q as usize;
        for k in 2..v.min(8) {
            let g4 = gcd(v as u64 - 1, k as u64 - 1) as usize;
            let g5 = gcd(v as u64 - 1, k as u64) as usize;
            assert_eq!(theorem4_design(v, k).params.b, v * (v - 1) / g4, "v={v} k={k}");
            assert_eq!(theorem5_design(v, k).params.b, v * (v - 1) / g5, "v={v} k={k}");
        }
    }
}

#[test]
fn theorem6_7_sweep() {
    for (k, max_m) in [(2usize, 6u32), (3, 4), (4, 3), (5, 3), (7, 2), (8, 2), (9, 2)] {
        for m in 2..=max_m {
            let v = k.pow(m);
            if v > 750 {
                continue;
            }
            let c = theorem6_design(v, k);
            assert_eq!(c.params.lambda, 1, "v={v} k={k}");
            assert_eq!(c.params.b as u64, bibd_min_blocks(v as u64, k as u64), "v={v} k={k}");
        }
    }
}

#[test]
fn theorem8_sweep() {
    for q in prime_powers_in(5, 17) {
        let v = q as usize;
        for k in [3usize, 4] {
            if k >= v {
                continue;
            }
            let rl = RingLayout::for_v_k(v, k);
            for removed in 0..v {
                let l = rl.remove_disk(removed);
                let q = QualityReport::measure(&l);
                assert!(q.reconstruction_balanced(), "v={v} k={k} rm={removed}");
                assert_eq!(q.parity_units.0, v);
                assert_eq!(q.parity_units.1, v);
            }
        }
    }
}

#[test]
fn theorem_10_11_12_sweep() {
    // All stairway targets reachable from each q, against their bounds.
    for q in prime_powers_in(5, 20) {
        let q = q as usize;
        let k = 3.min(q - 1);
        let design = RingDesign::for_v_k(q, k);
        for v in q + 1..=q + 8 {
            let Some(p) = StairwayParams::solve(q, v) else { continue };
            let l = stairway_layout(&design, v).unwrap();
            assert_eq!(l.size(), p.size(k), "q={q} v={v}");
            let m = QualityReport::measure(&l);
            let (olo, ohi) = p.parity_overhead_bounds(k);
            let (wlo, whi) = p.reconstruction_workload_bounds(k);
            assert!(
                m.parity_overhead.0 >= olo - 1e-9 && m.parity_overhead.1 <= ohi + 1e-9,
                "q={q} v={v}: overhead {:?} ∉ [{olo},{ohi}]",
                m.parity_overhead
            );
            assert!(
                m.reconstruction_workload.0 >= wlo - 1e-9
                    && m.reconstruction_workload.1 <= whi + 1e-9,
                "q={q} v={v}: workload {:?} ∉ [{wlo},{whi}]",
                m.reconstruction_workload
            );
        }
    }
}

#[test]
fn theorem2_boundary_sweep() {
    use parity_decluster::design::ring_design_exists;
    for v in 4u64..=150 {
        let m = min_prime_power_factor(v);
        assert!(ring_design_exists(v, m));
        assert!(!ring_design_exists(v, m + 1));
        // spot-build at the boundary
        if (2..=9).contains(&m) {
            let d = RingDesign::for_v_k(v as usize, m as usize);
            d.to_block_design().verify_bibd().unwrap();
        }
    }
}

#[test]
fn corollary17_sweep() {
    // perfect balance iff v | b, across the constructed designs
    for q in prime_powers_in(5, 16) {
        let v = q as usize;
        for k in 2..v.min(6) {
            let c = theorem4_design(v, k);
            let copies = copies_for_perfect_parity(c.params.b, v);
            assert_eq!((c.params.b * copies) % v, 0);
            for fewer in 1..copies {
                assert_ne!((c.params.b * fewer) % v, 0, "lcm minimality violated");
            }
        }
    }
}

#[test]
fn feasibility_claim_sample() {
    // The v ≤ 10,000 claim, sampled on a coarse grid here (the binary
    // claim_v10000 runs it exhaustively).
    for v in (10usize..=10_000).step_by(97) {
        assert!(
            parity_decluster::core::stairway_params_exist(v).is_some(),
            "no stairway for v={v}"
        );
    }
}
