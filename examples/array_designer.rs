//! Array designer: given a disk count `v` and stripe size `k`, survey
//! every construction the paper offers and recommend the best feasible
//! layout — exactly the decision a storage administrator faces.
//!
//! Run with: `cargo run --release --example array_designer -- 30 5`
//! (defaults to v=30, k=5 if no arguments are given)

use parity_decluster::core::{
    layout_size, stairway_layout, Method, QualityReport, RingLayout, StairwayParams,
    DEFAULT_FEASIBILITY_LIMIT,
};
use parity_decluster::design::RingDesign;

fn main() {
    let mut args = std::env::args().skip(1);
    let v: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    assert!(k >= 2 && k <= v, "need 2 <= k <= v");

    println!("designing a parity-declustered layout for v={v} disks, stripe size k={k}");
    println!("feasibility limit: {DEFAULT_FEASIBILITY_LIMIT} units/disk\n");

    println!("{:<14} {:>14} {:>10}", "method", "units/disk", "feasible");
    println!("{}", "-".repeat(42));
    for m in Method::ALL {
        match layout_size(m, v as u64, k as u64) {
            Some(size) => {
                let feasible = size <= DEFAULT_FEASIBILITY_LIMIT as u128;
                println!("{:<14} {:>14} {:>10}", m.name(), size, feasible);
            }
            None => println!("{:<14} {:>14} {:>10}", m.name(), "n/a", "-"),
        }
    }

    // Build the recommended layout: exact ring layout when possible,
    // otherwise a stairway approximation from a nearby prime power.
    println!();
    let m_v = parity_decluster::algebra::nt::min_prime_power_factor(v as u64) as usize;
    if k <= m_v {
        let rl = RingLayout::for_v_k(v, k);
        println!("recommendation: exact ring-based layout (k ≤ M(v) = {m_v})");
        println!("{}", QualityReport::measure(rl.layout()));
    } else {
        let (q, params) = parity_decluster::core::stairway_source_for(v, k)
            .expect("a stairway source exists for all v ≤ 10,000");
        let StairwayParams { c, w, d, .. } = params;
        println!(
            "recommendation: stairway layout from q={q} (d={d}, c={c}, w={w}) — \
             exact layouts need k ≤ M(v) = {m_v}"
        );
        let design = RingDesign::for_v_k(q, k);
        let l = stairway_layout(&design, v).expect("parameters validated");
        let report = QualityReport::measure(&l);
        println!("{report}");
        let (olo, ohi) = params.parity_overhead_bounds(k);
        println!(
            "Theorem 12 overhead bounds: [{olo:.4}, {ohi:.4}] — holds: {}",
            report.parity_overhead.0 >= olo - 1e-9 && report.parity_overhead.1 <= ohi + 1e-9
        );
    }
}
