//! Growing an array: take a 16-disk declustered array and extend it to
//! 20 disks with the stairway transformation, then add distributed
//! sparing — the Section 5 "extendible layouts" and "distributed
//! sparing" scenarios end to end.
//!
//! Run with: `cargo run --release --example grow_array`

use parity_decluster::core::{
    extend_via_stairway, QualityReport, RingLayout, SparedLayout, StairwayParams,
};
use parity_decluster::design::RingDesign;

fn main() {
    let (q, k, v) = (16usize, 5usize, 20usize);
    let design = RingDesign::for_v_k(q, k);
    let base = RingLayout::new(design.clone());
    println!("starting array: v={q}, k={k}, {} units/disk", base.layout().size());
    println!("{}\n", QualityReport::measure(base.layout()));

    // Extend 16 → 20 disks with the stairway transformation.
    let params = StairwayParams::solve(q, v).expect("stairway parameters exist");
    println!("extending to v={v} via {params}");
    let report = extend_via_stairway(&design, v).expect("construction succeeds");
    println!(
        "only {:.1}% of existing data must move (regenerating from scratch would move ~100%)",
        report.moved_fraction * 100.0
    );
    let extended = parity_decluster::core::stairway_layout(&design, v).unwrap();
    println!("{}\n", QualityReport::measure(&extended));

    // Add distributed sparing so the next failure rebuilds in place.
    let spared = SparedLayout::new(extended).expect("spare assignment is feasible");
    let counts = spared.spare_counts();
    println!(
        "distributed sparing: one spare per stripe, {}–{} spares per disk",
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap()
    );
    let plan = spared.rebuild_plan(0);
    let writes = plan.write_counts(spared.layout().v());
    println!(
        "if disk 0 fails: {} stripes rebuild into spares spread over {} disks (max {} writes/disk)",
        plan.targets.len(),
        writes.iter().filter(|&&w| w > 0).count(),
        writes.iter().max().unwrap()
    );
}
