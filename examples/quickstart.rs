//! Quickstart: build a parity-declustered layout, inspect its quality,
//! and map a logical address.
//!
//! Run with: `cargo run --release --example quickstart`

use parity_decluster::core::{AddressMapper, QualityReport, RingLayout};

fn main() {
    // An array of 9 disks with parity stripes of size 4: each stripe has
    // 3 data units + 1 parity unit on 4 distinct disks.
    let (v, k) = (9, 4);
    let rl = RingLayout::for_v_k(v, k);
    let layout = rl.layout();

    println!("ring-based layout for v={v}, k={k}");
    println!("units per disk: {} (= k(v-1))", layout.size());
    println!("parity stripes: {}\n", layout.b());

    // The layout satisfies all four Holland-Gibson conditions:
    let q = QualityReport::measure(layout);
    println!("{q}\n");
    assert!(q.parity_balanced(), "Condition 2: parity spread evenly");
    assert!(q.reconstruction_balanced(), "Condition 3: workload spread evenly");

    // Condition 3 in numbers: rebuilding a failed disk reads only
    // (k-1)/(v-1) = 37.5% of each survivor, vs 100% for RAID5.
    println!(
        "on failure, each surviving disk is read {:.1}% (RAID5: 100%)\n",
        q.reconstruction_workload.1 * 100.0
    );

    // Condition 4: logical→physical mapping is one table lookup.
    let mapper = AddressMapper::new(layout);
    let addr = 1000;
    let unit = mapper.locate(addr);
    let parity = mapper.parity_of(addr, layout);
    println!(
        "logical unit {addr} → disk {} offset {} (parity on disk {} offset {})",
        unit.disk, unit.offset, parity.disk, parity.offset
    );
    println!(
        "mapping table: {} entries, ~{} KiB resident",
        mapper.table_entries(),
        mapper.table_bytes() / 1024
    );

    // A peek at the first rows of the layout (stripe ids, * = parity).
    println!("\nfirst rows of the layout:");
    print!("{}", layout.ascii_art(6));
}
