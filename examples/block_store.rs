//! Quickstart for the `pdl-store` subsystem: build a declustered block
//! store on real bytes, fail a disk, read degraded, rebuild onto a
//! spare, and print the measured per-disk rebuild load next to the
//! paper's (k−1)/(v−1) prediction — then do it again with double
//! parity (P+Q) and **two** concurrent failures.
//!
//! Run with: `cargo run --release --example block_store`

use parity_decluster::core::{DoubleParityLayout, RingLayout};
use parity_decluster::sim::{Trace, Workload};
use parity_decluster::store::{BlockStore, MemBackend, Rebuilder};

fn main() {
    // A ring-declustered layout: v = 9 disks, stripes of k = 4.
    let (v, k) = (9usize, 4usize);
    let rl = RingLayout::for_v_k(v, k);
    let layout = rl.layout().clone();
    let unit_size = 4096;
    let copies = 4;

    // Backend: v disks plus one spare, `copies` layout copies deep.
    let backend = MemBackend::new(v + 1, copies * layout.size(), unit_size);
    let store = BlockStore::new(layout, backend).expect("geometry fits");
    println!(
        "block store: v={v} k={k}, {} blocks × {unit_size} B = {:.1} MiB data",
        store.blocks(),
        (store.blocks() * unit_size) as f64 / (1 << 20) as f64
    );

    // Fill with a deterministic pattern via a simulator-style trace.
    let workload = Workload { read_fraction: 0.0, request_units: (1, 8), ..Workload::default() };
    let trace = Trace::from_workload(&workload, store.blocks(), 2_000, 7);
    let stats = store.replay(&trace).expect("replay");
    println!("loaded via trace: {} writes, {} blocks", stats.writes, stats.blocks_written);
    store.verify_parity().expect("parity consistent");

    // Fail a disk; all data stays readable (reconstructed on the fly).
    let failed = 3;
    store.fail_disk(failed).expect("single failure tolerated");
    let mut buf = vec![0u8; unit_size];
    store.read_block(0, &mut buf).expect("degraded read");
    println!("disk {failed} failed — degraded reads OK");

    // Online rebuild onto the spare (physical disk v).
    store.reset_counters();
    let report = Rebuilder::default().rebuild(&store, v).expect("rebuild");
    store.verify_parity().expect("parity restored");

    println!(
        "rebuilt {} units onto spare {} with {} workers in {:.2?}",
        report.units_rebuilt, report.spare_disk, report.workers, report.elapsed
    );
    println!("\nper-surviving-disk rebuild reads (units):");
    for (d, &reads) in report.per_disk_reads.iter().enumerate() {
        if d == report.failed_disk {
            println!("  disk {d}: (failed)");
        } else {
            println!("  disk {d}: {reads}");
        }
    }
    let predicted = (k - 1) as f64 / (v - 1) as f64;
    println!(
        "\nmeasured mean read fraction {:.4}  |  paper's (k-1)/(v-1) = {predicted:.4}  |  \
         imbalance {:.2}%",
        report.mean_read_fraction(),
        report.read_imbalance() * 100.0
    );

    // ── Double parity: survive TWO concurrent failures ──────────────
    println!("\n=== P+Q double parity ===");
    let dp = DoubleParityLayout::new(rl.layout().clone()).expect("k >= 3");
    let backend = MemBackend::new(v + 2, copies * dp.layout().size(), unit_size);
    let store = BlockStore::new_pq(dp, backend).expect("geometry fits");
    println!(
        "pq store: tolerance {} failures, {} blocks (overhead 2/k = {:.0}%)",
        store.fault_tolerance(),
        store.blocks(),
        200.0 / k as f64
    );
    // Fewer data blocks per stripe (k−2, not k−1): size a fresh trace.
    let pq_trace = Trace::from_workload(&workload, store.blocks(), 2_000, 7);
    store.replay(&pq_trace).expect("replay");
    store.verify_parity().expect("P and Q consistent");

    store.fail_disk(2).expect("first failure");
    store.fail_disk(6).expect("second failure");
    store.read_block(0, &mut buf).expect("two-erasure degraded read");
    println!("disks 2 and 6 failed — doubly-degraded reads OK");

    store.reset_counters();
    let reports = Rebuilder::default().rebuild_all(&store, &[v, v + 1]).expect("double rebuild");
    store.verify_parity().expect("parity restored");
    for (phase, r) in reports.iter().enumerate() {
        println!(
            "phase {}: disk {} -> spare {}  mean read fraction {:.4} (predicted {predicted:.4}), \
             imbalance {:.2}%",
            phase + 1,
            r.failed_disk,
            r.spare_disk,
            r.mean_read_fraction(),
            r.read_imbalance() * 100.0
        );
    }
}
