//! Export/import: generate the best feasible layout for an array, ship
//! it as JSON (the controller's lookup table, Condition 4), and load it
//! back — the artifact a real storage system would persist.
//!
//! Run with: `cargo run --release --example export_layout -- 13 4`

use parity_decluster::core::{
    build_layout, from_json, layout_size, to_json, Method, QualityReport,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let v: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // Pick the smallest feasible method.
    let (method, layout) = Method::ALL
        .into_iter()
        .filter_map(|m| {
            layout_size(m, v as u64, k as u64)
                .filter(|&s| s <= 10_000)
                .and_then(|_| build_layout(m, v, k, 1_000_000).map(|l| (m, l)))
        })
        .min_by_key(|(_, l)| l.size())
        .expect("no feasible layout for these parameters");
    println!(
        "best feasible layout for v={v}, k={k}: {} ({} units/disk, {} stripes)",
        method.name(),
        layout.size(),
        layout.b()
    );
    println!("{}\n", QualityReport::measure(&layout));

    let json = to_json(&layout);
    println!("serialized: {} bytes of JSON", json.len());
    let preview: String = json.chars().take(120).collect();
    println!("  {preview}…\n");

    // Round-trip: a controller loading this table gets the same layout.
    let restored = from_json(&json).expect("round-trip must validate");
    assert_eq!(restored.v(), layout.v());
    assert_eq!(restored.b(), layout.b());
    let q1 = QualityReport::measure(&layout);
    let q2 = QualityReport::measure(&restored);
    assert_eq!(q1.parity_units, q2.parity_units);
    println!("round-trip OK: restored layout validates and measures identically");
}
