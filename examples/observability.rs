//! Observability tour: metrics registry, event tracing, degraded
//! windows, and live rebuild progress.
//!
//! Run with: `cargo run --release --example observability`

use parity_decluster::core::RingLayout;
use parity_decluster::store::{
    render_stats, BlockStore, CachePolicy, Event, MemBackend, Rebuilder, TraceLog,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (v, k) = (9, 4);
    let layout = RingLayout::for_v_k(v, k).layout().clone();
    let backend = MemBackend::new(v + 1, layout.size(), 512); // one spare
    let store = BlockStore::new(layout, backend)?;

    // A ring-buffer sink: keeps the newest 4096 events. Any type
    // implementing `EventSink` can be installed instead.
    let trace = Arc::new(TraceLog::with_capacity(4096));
    store.set_event_sink(Some(trace.clone()));

    // Generate traffic: bulk write, cached hot-set rewrites, reads.
    let blocks = store.blocks();
    let data = vec![7u8; blocks * 512];
    store.write_blocks(0, &data)?;
    store.set_cache_policy(CachePolicy::WriteBack { max_dirty: 64 })?;
    let unit = vec![9u8; 512];
    for i in 0..512 {
        store.write_block(i % 96, &unit)?;
    }
    store.flush()?;
    store.set_cache_policy(CachePolicy::WriteThrough)?;
    let mut buf = vec![0u8; 512];
    for i in 0..2048 {
        store.read_block((i * 37) % blocks, &mut buf)?;
    }

    // Fail a disk: the degraded window opens, degraded reads decode.
    store.fail_disk(2)?;
    for i in 0..512 {
        store.read_block((i * 11) % blocks, &mut buf)?;
    }

    // Rebuild onto the spare; the window closes on completion. With
    // racing traffic you would poll `store.rebuild_progress()` from
    // another thread — stripes done/total, per-disk reads, ETA.
    Rebuilder::default().rebuild(&store, v)?;

    // One snapshot of everything, rendered as text (stats.json is
    // the same snapshot via `StatsSnapshot::to_json`).
    let stats = store.stats();
    println!("{}", render_stats(&stats));

    // The paper's claim, straight from the snapshot: rebuilding one
    // disk read (k-1)/(v-1) of every survivor.
    let expect = (k - 1) as f64 / (v - 1) as f64;
    println!("rebuild read fraction per survivor: {expect:.3} (= (k-1)/(v-1))");

    // The trace has the whole story, op spans included.
    let events = trace.events();
    let fails = events.iter().filter(|e| matches!(e, Event::DiskFailed { .. })).count();
    let rebuilds = events.iter().filter(|e| matches!(e, Event::RebuildCompleted { .. })).count();
    println!("trace: {} events in ring ({fails} fail, {rebuilds} rebuild-complete)", events.len());
    for e in events.iter().rev().take(5) {
        println!("  recent: {e:?}");
    }
    Ok(())
}
