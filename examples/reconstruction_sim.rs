//! Reconstruction simulation: fail a disk in a declustered array and a
//! RAID5 array of the same geometry, rebuild both under live load, and
//! compare — the experiment motivating the entire paper.
//!
//! Run with: `cargo run --release --example reconstruction_sim`

use parity_decluster::core::{raid5_layout, RingLayout};
use parity_decluster::sim::{simulate, RebuildTarget, SimConfig, StopCondition, Workload};

fn main() {
    let v = 9;
    let k = 3;
    let declustered = RingLayout::for_v_k(v, k);
    let raid5 = raid5_layout(v, declustered.layout().size());
    println!(
        "array: v={v} disks × {} units; declustered k={k} vs RAID5 (k=v)\n",
        declustered.layout().size()
    );

    for (name, layout) in [("declustered", declustered.layout()), ("RAID5", &raid5)] {
        let cfg = SimConfig {
            seed: 2024,
            failed_disk: Some(0),
            rebuild: Some(RebuildTarget::DedicatedSpare),
            workload: Workload { arrivals_per_sec: 40.0, read_fraction: 0.7, ..Default::default() },
            stop: StopCondition::RebuildComplete,
            ..Default::default()
        };
        let r = simulate(layout, cfg);
        println!("=== {name} ===");
        println!(
            "rebuild completed in {:.2} s of simulated time",
            r.rebuild_finished_at.unwrap() as f64 / 1e6
        );
        println!(
            "foreground: {} requests, mean response {:.1} ms, p95 {:.1} ms",
            r.completed,
            r.mean_response_us / 1e3,
            r.p95_response_us as f64 / 1e3
        );
        println!("per-disk rebuild reads (survivors): {:?}", &r.rebuild_reads[1..v]);
        println!(
            "spare disk absorbed {} rebuild writes\n",
            r.rebuild_writes.last().copied().unwrap_or(0)
        );
    }

    println!(
        "expected shape: the declustered array reads only (k-1)/(v-1) = {:.0}% of each\n\
         survivor and rebuilds several times faster with lower user-visible latency.",
        (k as f64 - 1.0) / (v as f64 - 1.0) * 100.0
    );
}
