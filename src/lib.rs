//! # parity-decluster
//!
//! A complete implementation of **"Improved Parity-Declustered Layouts
//! for Disk Arrays"** (Schwabe & Sutherland, SPAA 1994 / JCSS 1996):
//! ring-based BIBD constructions, approximately-balanced layouts (disk
//! removal and the stairway transformation), flow-based parity
//! assignment, and an event-driven disk-array simulator for evaluating
//! reconstruction performance.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`algebra`] — finite fields, rings, number theory;
//! * [`design`] — balanced incomplete block designs (Theorems 1–7);
//! * [`flow`] — max-flow with lower bounds, bipartite matching;
//! * [`core`] — layouts, metrics, and all constructions (the paper's
//!   contribution);
//! * [`sim`] — the disk-array load/reconstruction simulator;
//! * [`store`] — a byte-level parity-declustered block store with
//!   pluggable backends, degraded I/O, and online rebuild.
//!
//! ## Quickstart
//!
//! ```
//! use parity_decluster::core::{RingLayout, QualityReport};
//!
//! // A declustered layout for 13 disks with parity stripes of size 4:
//! // one table copy, 48 units per disk, perfectly balanced.
//! let rl = RingLayout::for_v_k(13, 4);
//! let q = QualityReport::measure(rl.layout());
//! assert!(q.parity_balanced() && q.reconstruction_balanced());
//!
//! // Reconstruction after a failure reads only (k-1)/(v-1) = 25% of
//! // each surviving disk, vs 100% for RAID5.
//! assert!((q.reconstruction_workload.1 - 0.25).abs() < 1e-12);
//! ```
//!
//! ## Real bytes: the block store
//!
//! The [`store`] subsystem turns any layout into an actual
//! fault-tolerant array with a configurable parity scheme — XOR
//! (single failure) or P+Q over `GF(2^8)` (any **two** concurrent
//! failures) — parity maintained on every write, degraded reads
//! erasure-decoding lost units, and an online rebuild whose measured
//! per-disk read load verifies the claim above on real traffic:
//!
//! ```
//! use parity_decluster::core::RingLayout;
//! use parity_decluster::store::{BlockStore, MemBackend, Rebuilder};
//!
//! let layout = RingLayout::for_v_k(13, 4).layout().clone();
//! let backend = MemBackend::new(14, layout.size(), 512); // 13 disks + spare
//! let mut store = BlockStore::new(layout, backend).unwrap();
//!
//! store.write_block(0, &[7u8; 512]).unwrap();
//! store.fail_disk(5).unwrap();
//! let mut buf = [0u8; 512];
//! store.read_block(0, &mut buf).unwrap();       // degraded read
//! assert_eq!(buf[0], 7);
//!
//! let report = Rebuilder::default().rebuild(&mut store, 13).unwrap();
//! assert!((report.mean_read_fraction() - 0.25).abs() < 1e-9); // (k-1)/(v-1)
//! ```
//!
//! Double-fault tolerance is one constructor away — Section 5's
//! "more than one distinguished unit per stripe" extension, with the
//! P+Q placement balanced by the generalized Theorem 14 flow:
//!
//! ```
//! use parity_decluster::core::{DoubleParityLayout, RingLayout};
//! use parity_decluster::store::{BlockStore, MemBackend, Rebuilder};
//!
//! let dp = DoubleParityLayout::new(RingLayout::for_v_k(13, 4).layout().clone()).unwrap();
//! let backend = MemBackend::new(15, dp.layout().size(), 512); // 13 disks + 2 spares
//! let mut store = BlockStore::new_pq(dp, backend).unwrap();
//!
//! store.write_block(0, &[9u8; 512]).unwrap();
//! store.fail_disk(5).unwrap();
//! store.fail_disk(11).unwrap();                 // second concurrent failure
//! let mut buf = [0u8; 512];
//! store.read_block(0, &mut buf).unwrap();       // two-erasure decode
//! assert_eq!(buf[0], 9);
//!
//! // Two-phase rebuild; each phase reads (k-1)/(v-1) of every survivor.
//! let reports = Rebuilder::default().rebuild_all(&mut store, &[13, 14]).unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(!store.is_degraded());
//! ```

#![warn(missing_docs)]

pub use pdl_algebra as algebra;
pub use pdl_core as core;
pub use pdl_design as design;
pub use pdl_flow as flow;
pub use pdl_sim as sim;
pub use pdl_store as store;
